"""The traffic reactor: client sessions -> per-core op streams -> engine.

:func:`run_traffic` measures one (scheme, traffic spec) point by driving
an :class:`~repro.sim.engine.EngineStream` as an event loop:

* Each request is lowered to its op sequence (:class:`~repro.serve.
  kvservice.KVService`) and fed to its home core **one request at a
  time**.  When a core starves (``pump()`` returns it), its clock is
  exactly the completion cycle of the request in flight — per-request
  latency with no per-op callbacks.
* **Open loop** — requests carry absolute Poisson arrival cycles; a core
  whose next request has not arrived yet is ``advance``-d to the arrival
  (modelling the idle gap), and latency is ``completion − arrival``, so
  queueing delay under overload shows up in the tail exactly as it
  would at a real server.
* **Closed loop** — a fixed client population; a completion schedules
  the client's next request after an exponential think time.  Dispatch
  is per-core FIFO in routing order: a freed core takes the
  oldest-routed request, advancing to its ready cycle if needed; cores
  with nothing routed go ``idle`` so they never block global progress,
  and are woken when a request routes to them (or, if everything idles,
  the reactor advances the earliest-ready core — the event-loop timer
  step).

Overload protection (all off by default, enabled per
:class:`~repro.serve.loadgen.TrafficSpec`):

* **Bounded admission** — ``queue_limit`` caps each core's queue; an
  arrival finding it full is *shed* with a typed
  :class:`~repro.obs.events.RequestRejected` outcome instead of queueing
  without bound.
* **Deadlines** — ``deadline_cycles`` drops a request still queued when
  its core passes ``arrival + deadline`` (a ``timeout`` outcome, counted
  in the :class:`~repro.obs.latency.LatencyRecorder`); the request is
  never lowered, exactly like a server load-shedding before parsing.
  This is also what guarantees closed-loop termination when a core's
  queue never drains.
* **Retries** — closed-loop clients re-issue shed/timed-out requests up
  to ``max_retries`` times with exponential backoff
  (``retry_backoff_cycles * 2**attempt``) under a seeded 0.5–1.5x
  jitter, then give up and move on.
* **Degraded mode** — when battery health is in doubt (a fault plan
  targets the battery domain, or the caller forces it), schemes whose
  registry descriptor declares ``degraded_mode == DEGRADED_WRITE_THROUGH``
  are served with every persisting store force-drained out of the
  battery domain as it allocates: slower, but durable without the
  battery.  Schemes without the capability refuse.

Determinism: the load generator, the service routing, and the engine's
streamed interleaving are all seeded/deterministic, so a (scheme, spec)
pair always produces the same latencies and the same fingerprint-stable
engine results.  With the overload features disabled the reactor issues
the exact per-core call sequence it always has — fault-free default
traffic is bit-identical run to run and release to release.  Open-loop
runs use only ``feed``/``advance``/``end`` and interoperate with the
batched columnar interpreter; closed-loop runs additionally use
``idle``, whose wake policy has no materialized-trace equivalent (the
run is still deterministic — it is just not claimed bit-identical to any
``Engine.run`` invocation).

:func:`traffic_curve` sweeps offered load across schemes and packages
the throughput-vs-load curve with p50/p99/p999 per scheme into the
versioned report (see :mod:`repro.serve.report`).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import (Deque, Dict, Iterable, List, Optional, Sequence, Tuple,
                    Type)

from repro.api import RunOptions, build_system
from repro.core.registry import (DEGRADED_WRITE_THROUGH, SchemeInfo,
                                 canonical_name, scheme_info)
from repro.fault.plan import BATTERY_DOMAIN_SITES
from repro.obs.bus import EventBus
from repro.obs.events import (DegradedModeEntered, RequestCompleted,
                              RequestRejected, RequestRetried,
                              RequestTimeout)
from repro.obs.latency import LatencyRecorder, percentile_summary
from repro.serve.kvservice import KVService
from repro.serve.loadgen import Request, TrafficSpec, iter_requests, think_time
from repro.serve.report import build_report
from repro.sim.config import SystemConfig
from repro.sim.system import System

__all__ = [
    "LoopStats",
    "OUTCOME_REJECTED",
    "OUTCOME_RETRIED",
    "OUTCOME_TIMEOUT",
    "TrafficPoint",
    "run_traffic",
    "traffic_curve",
]

#: Key prefixes the recorder files per-tenant / per-op breakdowns under.
_TENANT_KEY = "tenant:"
_OP_KEY = "op:"

#: Outcome labels tallied in the :class:`LatencyRecorder` beside the
#: latency histograms (completions are the histograms themselves).
OUTCOME_REJECTED = "rejected"
OUTCOME_TIMEOUT = "timeout"
OUTCOME_RETRIED = "retried"


@dataclass
class LoopStats:
    """What one reactor loop did, beyond the latency histograms.

    ``acked_ids`` (completions the client saw) and ``dropped_ids``
    (shed/timed-out requests whose clients got a definitive failure) let
    the crash-recovery drill classify every remaining request as lost in
    flight."""

    completed: int = 0
    crashed: bool = False
    shed: int = 0
    timeouts: int = 0
    retries: int = 0
    max_queue_depth: int = 0
    acked_ids: List[int] = field(default_factory=list)
    dropped_ids: List[int] = field(default_factory=list)

    def note_depth(self, depth: int) -> None:
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth


@dataclass
class TrafficPoint:
    """One (scheme, offered load) measurement."""

    scheme: str
    arrival: str
    offered_load: float
    requests: int
    completed: int
    execution_cycles: int
    #: Achieved throughput, requests per 1000 cycles.
    achieved_load: float
    latency: Dict[str, object]
    tenants: Dict[str, Dict[str, object]]
    ops: Dict[str, Dict[str, object]]
    crashed: bool = False
    #: Simulator counters worth carrying into reports.
    nvmm_writes: int = 0
    stall_cycles: int = 0
    #: Overload accounting (see the module docstring).
    shed: int = 0
    timeouts: int = 0
    retries: int = 0
    shed_rate: float = 0.0
    max_queue_depth: int = 0
    #: True when the scheme served in its degraded mode.
    degraded: bool = False

    def to_payload(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme,
            "arrival": self.arrival,
            "offered_load": self.offered_load,
            "requests": self.requests,
            "completed": self.completed,
            "execution_cycles": self.execution_cycles,
            "achieved_load": self.achieved_load,
            "latency": dict(self.latency),
            "tenants": {k: dict(v) for k, v in self.tenants.items()},
            "ops": {k: dict(v) for k, v in self.ops.items()},
            "crashed": self.crashed,
            "nvmm_writes": self.nvmm_writes,
            "stall_cycles": self.stall_cycles,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "shed_rate": self.shed_rate,
            "max_queue_depth": self.max_queue_depth,
            "degraded": self.degraded,
        }


def default_traffic_config() -> SystemConfig:
    """The system the frontend serves on when no config is given (the
    same scaled Table III system the experiment drivers use)."""
    from repro.analysis.experiments import default_sim_config

    return default_sim_config()


# ----------------------------------------------------------------------
# Degraded-mode serving
# ----------------------------------------------------------------------

class _ForceWriteThrough:
    """Mixin implementing the ``write-through`` degraded capability: each
    persisting store's persist-buffer entry is force-drained toward the
    ADR domain the moment it allocates, so durability never rests on the
    battery.  Same exact contract, strictly more NVMM writes."""

    def on_persisting_store(self, core, block_addr, block_data, now):
        stall = super().on_persisting_store(core, block_addr, block_data, now)
        buf = self.buffers[core]
        if buf.contains(block_addr):
            buf.force_drain(block_addr, now)
            self.hierarchy.directory.set_bbpb_owner(block_addr, None, now)
        return stall


_DEGRADED_CLASSES: Dict[type, type] = {}


def _degraded_scheme_cls(info: SchemeInfo) -> Type:
    """The scheme subclass serving ``info`` in its declared degraded
    mode; raises ``ValueError`` for schemes without the capability."""
    if info.degraded_mode != DEGRADED_WRITE_THROUGH:
        raise ValueError(
            f"scheme {info.name!r} declares no degraded mode; cannot serve "
            f"degraded (registry degraded_mode={info.degraded_mode!r})"
        )
    cls = _DEGRADED_CLASSES.get(info.cls)
    if cls is None:
        cls = type("Degraded" + info.cls.__name__,
                   (_ForceWriteThrough, info.cls), {})
        _DEGRADED_CLASSES[info.cls] = cls
    return cls


def _battery_health_suspect(opts: RunOptions) -> bool:
    """True when the run's fault plan targets the battery domain — the
    modelled health signal (brown-out risk, failed self-test) that
    triggers degraded serving for capable schemes."""
    injector = opts.fault_injector
    if not injector.enabled:
        return False
    return any(injector.plan.for_site(site) for site in BATTERY_DOMAIN_SITES)


def run_traffic(
    scheme: str,
    spec: TrafficSpec,
    *,
    config: Optional[SystemConfig] = None,
    entries: int = 32,
    options: Optional[RunOptions] = None,
    degraded: Optional[bool] = None,
) -> TrafficPoint:
    """Serve ``spec``'s traffic on ``scheme``; return the measured point.

    ``degraded=None`` (the default) auto-degrades capable schemes when
    the run's fault plan puts battery health in doubt; ``True`` forces
    degraded serving (``ValueError`` if the scheme declares no degraded
    mode); ``False`` never degrades."""
    info = scheme_info(scheme)
    cfg = config or default_traffic_config()
    opts = options or RunOptions()
    if degraded is None:
        degraded = bool(info.degraded_mode) and _battery_health_suspect(opts)
    if degraded:
        scheme_obj = info.build_scheme(
            entries=entries, scheme_cls=_degraded_scheme_cls(info))
        system = System(cfg, scheme_obj, reorder_seed=opts.reorder_seed,
                        bus=opts.bus, fault_injector=opts.fault_injector,
                        crash_schedule=opts.crash_schedule, mode=opts.mode)
        if opts.bus.enabled:
            opts.bus.emit(DegradedModeEntered(
                cycle=0, scheme=info.name, mode=info.degraded_mode,
                reason="battery health suspect",
            ))
    else:
        system = build_system(info.name, entries=entries, config=cfg,
                              options=opts)
    service = KVService(cfg.mem, spec, cfg.num_cores)
    recorder = LatencyRecorder()
    session = system.stream()
    bus = opts.bus

    if spec.open_loop:
        stats = _open_loop(session, service, spec, recorder, bus)
    else:
        stats = _closed_loop(session, service, spec, recorder, bus)
    result = session.finish()

    cycles = result.execution_cycles
    achieved = (stats.completed / cycles * 1000.0) if cycles else 0.0
    tenants = {
        key[len(_TENANT_KEY):]: percentile_summary(recorder.histogram(key))
        for key in recorder.keys() if key.startswith(_TENANT_KEY)
    }
    ops = {
        key[len(_OP_KEY):]: percentile_summary(recorder.histogram(key))
        for key in recorder.keys() if key.startswith(_OP_KEY)
    }
    return TrafficPoint(
        scheme=info.name,
        arrival=spec.arrival,
        offered_load=spec.offered_load,
        requests=spec.requests,
        completed=stats.completed,
        execution_cycles=cycles,
        achieved_load=round(achieved, 6),
        latency=percentile_summary(recorder.histogram()),
        tenants=tenants,
        ops=ops,
        crashed=stats.crashed or result.crashed,
        nvmm_writes=result.stats.nvmm_writes,
        stall_cycles=result.stats.total_bbpb_stalls,
        shed=stats.shed,
        timeouts=stats.timeouts,
        retries=stats.retries,
        shed_rate=round(stats.shed / spec.requests, 6),
        max_queue_depth=stats.max_queue_depth,
        degraded=bool(degraded),
    )


# ----------------------------------------------------------------------
# Reactor loops
# ----------------------------------------------------------------------

def _complete(
    session,
    service: KVService,
    recorder: LatencyRecorder,
    bus: EventBus,
    core: int,
    request: Request,
    arrival: int,
) -> None:
    clock = session.clock(core)
    latency = max(0, clock - arrival)
    recorder.record(
        latency, _TENANT_KEY + request.tenant, _OP_KEY + request.op
    )
    if bus.enabled:
        bus.emit(RequestCompleted(
            cycle=clock,
            core=core,
            request_id=request.request_id,
            tenant=request.tenant,
            op=request.op,
            latency=latency,
        ))


def _open_loop(
    session, service: KVService, spec: TrafficSpec,
    recorder: LatencyRecorder, bus: EventBus,
    requests: Optional[Iterable[Request]] = None,
) -> LoopStats:
    """Open-loop reactor.  Admission is lazy: the arrival-ordered stream
    is pulled as cores starve, so bounded queues see the depth they would
    at the arrival instant.  With ``queue_limit``/``deadline_cycles``
    unset this issues the identical per-core call sequence as eager
    routing — the fault-free fast path is unchanged."""
    n = service.num_cores
    stream = iter(requests if requests is not None else iter_requests(spec))
    queues: List[Deque[Request]] = [deque() for _ in range(n)]
    in_flight: List[Optional[Request]] = [None] * n
    stats = LoopStats()
    exhausted = False

    def admit(request: Request) -> None:
        core = service.core_of(request)
        if spec.queue_limit and len(queues[core]) >= spec.queue_limit:
            stats.shed += 1
            stats.dropped_ids.append(request.request_id)
            recorder.count(OUTCOME_REJECTED)
            if bus.enabled:
                bus.emit(RequestRejected(
                    cycle=request.arrival, core=core,
                    request_id=request.request_id, tenant=request.tenant,
                    depth=len(queues[core]),
                ))
            return
        queues[core].append(request)
        stats.note_depth(len(queues[core]))

    def pull_for(core: int) -> None:
        """Admit arrivals (in order) until ``core`` has work or the
        stream ends; intermediate arrivals land on their own queues."""
        nonlocal exhausted
        while not exhausted and not queues[core]:
            nxt = next(stream, None)
            if nxt is None:
                exhausted = True
                return
            admit(nxt)

    while True:
        needy = session.pump()
        if needy is None:
            break
        request = in_flight[needy]
        if request is not None:
            _complete(session, service, recorder, bus, needy, request,
                      request.arrival)
            stats.completed += 1
            stats.acked_ids.append(request.request_id)
            in_flight[needy] = None
        while True:
            if not queues[needy]:
                pull_for(needy)
            if not queues[needy]:
                session.end(needy)
                break
            nxt = queues[needy].popleft()
            waited = session.clock(needy) - nxt.arrival
            if spec.deadline_cycles and waited > spec.deadline_cycles:
                # Queued past its deadline: dropped before lowering a
                # single op, exactly like a server shedding stale work.
                stats.timeouts += 1
                stats.dropped_ids.append(nxt.request_id)
                recorder.count(OUTCOME_TIMEOUT)
                if bus.enabled:
                    bus.emit(RequestTimeout(
                        cycle=session.clock(needy), core=needy,
                        request_id=nxt.request_id, tenant=nxt.tenant,
                        waited=waited, deadline=spec.deadline_cycles,
                    ))
                continue
            # The gap until the next arrival is idle time, not service
            # time: move the core's clock to the arrival cycle.
            session.advance(needy, nxt.arrival)
            session.feed(needy, service.ops_for(nxt))
            in_flight[needy] = nxt
            break
    stats.crashed = session.result.crashed
    return stats


def _closed_loop(
    session, service: KVService, spec: TrafficSpec,
    recorder: LatencyRecorder, bus: EventBus,
) -> LoopStats:
    n = service.num_cores
    think_rng = random.Random(spec.seed ^ 0x7417E)
    retry_rng = random.Random(spec.seed ^ 0x3E77E5)
    #: Per-client queues of that client's requests, in draw order.
    client_queues: Dict[int, Deque[Request]] = {}
    for request in iter_requests(spec):
        client_queues.setdefault(request.client, deque()).append(request)
    #: Per-core FIFO of (request, ready cycle), in routing order.
    pending: List[Deque[Tuple[Request, int]]] = [deque() for _ in range(n)]
    #: Request in flight per core, with its ready (arrival) cycle.
    in_flight: List[Optional[Tuple[Request, int]]] = [None] * n
    sleeping = [False] * n
    #: Retry attempts so far per request id.
    attempts: Dict[int, int] = {}
    stats = LoopStats()

    def client_continue(request: Request, now: int) -> None:
        """The issuing client got a definitive answer at ``now``; after a
        think time it issues its next request."""
        queue = client_queues.get(request.client)
        if queue:
            route(queue.popleft(), now + think_time(spec, think_rng))

    def failed(request: Request, now: int) -> None:
        """A shed or timeout at cycle ``now``: retry with exponential
        backoff + jitter while attempts remain, else the client gives up
        and moves on (this is what bounds every request's lifetime)."""
        attempt = attempts.get(request.request_id, 0)
        if attempt < spec.max_retries:
            attempts[request.request_id] = attempt + 1
            stats.retries += 1
            recorder.count(OUTCOME_RETRIED)
            backoff = spec.retry_backoff_cycles * (2 ** attempt)
            delay = max(1, int(backoff * (0.5 + retry_rng.random())))
            if bus.enabled:
                bus.emit(RequestRetried(
                    cycle=now, core=service.core_of(request),
                    request_id=request.request_id, attempt=attempt + 1,
                    retry_at=now + delay,
                ))
            route(request, now + delay)
        else:
            stats.dropped_ids.append(request.request_id)
            client_continue(request, now)

    def dispatch(core: int) -> bool:
        """Feed ``core``'s oldest routed request; False if none queued.
        Requests past their deadline are dropped (timeout) instead of
        served."""
        while pending[core]:
            request, ready = pending[core].popleft()
            waited = session.clock(core) - ready
            if spec.deadline_cycles and waited > spec.deadline_cycles:
                stats.timeouts += 1
                recorder.count(OUTCOME_TIMEOUT)
                if bus.enabled:
                    bus.emit(RequestTimeout(
                        cycle=session.clock(core), core=core,
                        request_id=request.request_id, tenant=request.tenant,
                        waited=waited, deadline=spec.deadline_cycles,
                    ))
                failed(request, session.clock(core))
                continue
            session.advance(core, ready)
            session.feed(core, service.ops_for(request))
            in_flight[core] = (request, ready)
            sleeping[core] = False
            return True
        return False

    def route(request: Request, ready: int) -> None:
        core = service.core_of(request)
        idle_now = sleeping[core] and in_flight[core] is None
        if (spec.queue_limit and not idle_now
                and len(pending[core]) >= spec.queue_limit):
            stats.shed += 1
            recorder.count(OUTCOME_REJECTED)
            if bus.enabled:
                bus.emit(RequestRejected(
                    cycle=ready, core=core, request_id=request.request_id,
                    tenant=request.tenant, depth=len(pending[core]),
                ))
            failed(request, ready)
            return
        pending[core].append((request, ready))
        stats.note_depth(len(pending[core]))
        if idle_now:
            dispatch(core)

    # Every client's first request is ready at cycle 0.
    for client in sorted(client_queues):
        queue = client_queues[client]
        if queue:
            route(queue.popleft(), 0)

    while True:
        needy = session.pump()
        if needy is None:
            if session.result.crashed:
                break
            # Everyone is idle: either done, or all queued requests are
            # in the future — wake the earliest (the timer step).
            best_core = -1
            best_ready = 0
            for core in range(n):
                if pending[core]:
                    ready = pending[core][0][1]
                    if best_core < 0 or ready < best_ready:
                        best_core, best_ready = core, ready
            if best_core < 0:
                break
            dispatch(best_core)
            continue
        flight = in_flight[needy]
        if flight is not None:
            request, ready = flight
            _complete(session, service, recorder, bus, needy, request, ready)
            stats.completed += 1
            stats.acked_ids.append(request.request_id)
            in_flight[needy] = None
            # The client thinks, then issues its next request.
            client_continue(request, session.clock(needy))
        if not dispatch(needy):
            # Nothing routed here right now; requests may arrive later.
            session.idle(needy)
            sleeping[needy] = True
    stats.crashed = session.result.crashed
    return stats


# ----------------------------------------------------------------------
# The curve sweep
# ----------------------------------------------------------------------

def traffic_curve(
    schemes: Sequence[str],
    spec: TrafficSpec,
    loads: Sequence[float],
    *,
    config: Optional[SystemConfig] = None,
    entries: int = 32,
) -> Dict[str, object]:
    """Throughput-vs-offered-load curve with latency percentiles for each
    scheme, as a versioned traffic report payload."""
    if not schemes:
        raise ValueError("at least one scheme is required")
    if not loads:
        raise ValueError("at least one offered load is required")
    names = [canonical_name(s) for s in schemes]
    points: List[TrafficPoint] = []
    for name in names:
        for load in loads:
            points.append(run_traffic(
                name, spec.with_load(load), config=config, entries=entries,
            ))
    return build_report(spec, names, list(loads), points)
