"""The unified program IR: one analyzable representation for every input.

Workloads, the litmus DSL, hand-written traces, and the checker each used
to speak a slightly different op dialect; the optimizer (:mod:`repro.opt`)
needs one canonical form to rewrite.  A :class:`Program` is that form:
per-thread tuples of :class:`Op` — the exact :class:`~repro.sim.trace.
TraceOp` vocabulary (load / store / flush / fence / epoch / compute)
enriched with two pieces of metadata the executable trace never carried:

``origin``
    per-op provenance — which workload, litmus location, or
    instrumentation step produced the op.  Survives the trace-file
    round-trip (:func:`repro.sim.tracefile.save_program`) and lets the
    verifier name exactly which op an unsound pass removed.

``durable``
    durable-location metadata — whether the op's address falls in the
    persistent region, resolved once at construction from the memory
    config's ``is_persistent`` predicate, so passes never need a config
    to tell a persisting store from a volatile one.

Conversions are lossless in both directions: ``to_trace``/``from_trace``
map to the object representation the engine executes, and
``to_columnar``/``from_columnar`` to the batched columnar one; only the
metadata (which the engine ignores) is shed on the way out and must be
re-derived on the way in.

:func:`instrument_naive` is the optimizer's front step: it inserts the
paper's Fig. 3 "naive persistent programming" instrumentation — a clwb of
the stored line plus an sfence after every persisting store — producing
the program a pmem/ADR-era library would emit.  The pass pipeline then
removes whatever each scheme's hardware contract makes redundant; on BBB
that is all of it, which is the paper's point, quantified.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.sim.trace import OpKind, ProgramTrace, ThreadTrace, TraceOp

__all__ = [
    "INSTRUMENT_FENCE",
    "INSTRUMENT_FLUSH",
    "Op",
    "Program",
    "instrument_naive",
]

#: Provenance origins stamped by :func:`instrument_naive`.
INSTRUMENT_FLUSH = "naive-instrument/clwb"
INSTRUMENT_FENCE = "naive-instrument/sfence"


@dataclass(frozen=True)
class Op:
    """One IR operation: the executable fields of a
    :class:`~repro.sim.trace.TraceOp` plus provenance and durable-location
    metadata (see module docstring)."""

    kind: OpKind
    addr: int = 0
    size: int = 8
    value: int = 0
    cycles: int = 0
    tag: Optional[str] = None
    #: Provenance: who emitted this op (workload name, litmus location,
    #: instrumentation step).  Informational — never affects execution.
    origin: str = ""
    #: True when ``addr`` falls in the persistent region.
    durable: bool = False

    def to_trace_op(self) -> TraceOp:
        """The executable form (metadata shed)."""
        return TraceOp(self.kind, addr=self.addr, size=self.size,
                       value=self.value, cycles=self.cycles, tag=self.tag)

    @staticmethod
    def from_trace_op(
        op: TraceOp, origin: str = "", durable: bool = False
    ) -> "Op":
        return Op(op.kind, addr=op.addr, size=op.size, value=op.value,
                  cycles=op.cycles, tag=op.tag, origin=origin,
                  durable=durable)

    def describe(self) -> str:
        """Short human form used in verifier diagnostics."""
        parts = [self.kind.value]
        if self.kind in (OpKind.LOAD, OpKind.STORE, OpKind.FLUSH):
            parts.append(f"0x{self.addr:x}")
        if self.kind is OpKind.STORE:
            parts.append(f"={self.value}")
        if self.origin:
            parts.append(f"[{self.origin}]")
        return " ".join(parts)

    # -- serialization (compact JSON-able dict; defaults omitted) -------
    def to_payload(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"k": self.kind.value}
        if self.addr:
            out["a"] = self.addr
        if self.size != 8:
            out["s"] = self.size
        if self.value:
            out["v"] = self.value
        if self.cycles:
            out["c"] = self.cycles
        if self.tag:
            out["g"] = self.tag
        if self.origin:
            out["p"] = self.origin
        if self.durable:
            out["d"] = True
        return out

    @staticmethod
    def from_payload(payload: Mapping[str, Any]) -> "Op":
        try:
            kind = OpKind(payload["k"])
        except (KeyError, ValueError) as exc:
            raise ValueError(
                f"bad IR op payload: unknown kind {payload.get('k')!r}"
            ) from exc
        return Op(
            kind,
            addr=int(payload.get("a", 0)),
            size=int(payload.get("s", 8)),
            value=int(payload.get("v", 0)),
            cycles=int(payload.get("c", 0)),
            tag=payload.get("g"),
            origin=str(payload.get("p", "")),
            durable=bool(payload.get("d", False)),
        )


@dataclass(frozen=True)
class Program:
    """A whole multi-threaded program in IR form: per-thread op tuples
    plus a name for reports.  Immutable — passes build new programs."""

    threads: Tuple[Tuple[Op, ...], ...]
    name: str = ""

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    @property
    def total_ops(self) -> int:
        return sum(len(t) for t in self.threads)

    def iter_ops(self) -> Iterator[Tuple[int, int, Op]]:
        """``(thread, index, op)`` in per-thread program order."""
        for tid, ops in enumerate(self.threads):
            for i, op in enumerate(ops):
                yield tid, i, op

    def count(self, kind: OpKind) -> int:
        return sum(
            1 for ops in self.threads for op in ops if op.kind is kind
        )

    def kind_counts(self) -> Dict[str, int]:
        """Op counts keyed by kind value, zero-count kinds included —
        the shape reports and elision percentages are computed from."""
        counts = {kind.value: 0 for kind in OpKind}
        for ops in self.threads:
            for op in ops:
                counts[op.kind.value] += 1
        return counts

    def with_threads(
        self, threads: Tuple[Tuple[Op, ...], ...]
    ) -> "Program":
        return replace(self, threads=threads)

    # -- conversions ---------------------------------------------------
    def to_trace(self) -> ProgramTrace:
        """The executable object-trace form (lossless on executable
        fields; provenance/durability metadata shed)."""
        return ProgramTrace([
            ThreadTrace(op.to_trace_op() for op in ops)
            for ops in self.threads
        ])

    @staticmethod
    def from_trace(
        trace: ProgramTrace,
        *,
        name: str = "",
        origin: str = "",
        is_persistent: Optional[Callable[[int], bool]] = None,
    ) -> "Program":
        """Lift an executable trace into the IR.  ``origin`` stamps every
        op's provenance; ``is_persistent`` resolves durable-location
        metadata (omitted: every op reads as volatile, and
        :func:`instrument_naive` will instrument nothing)."""
        pred = is_persistent or (lambda addr: False)
        threads = tuple(
            tuple(
                Op.from_trace_op(
                    op, origin=origin,
                    durable=bool(op.addr) and pred(op.addr),
                )
                for op in thread.ops
            )
            for thread in trace.threads
        )
        return Program(threads=threads, name=name)

    def to_columnar(self):
        """The batched columnar form (via the object trace — same bytes
        on disk, see :mod:`repro.sim.tracefile`)."""
        from repro.sim.coltrace import columnar_of

        return columnar_of(self.to_trace())

    @staticmethod
    def from_columnar(
        coltrace,
        *,
        name: str = "",
        origin: str = "",
        is_persistent: Optional[Callable[[int], bool]] = None,
    ) -> "Program":
        return Program.from_trace(
            coltrace.to_program(), name=name, origin=origin,
            is_persistent=is_persistent,
        )

    # -- serialization -------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """JSON-able (and picklable) payload: embedded in
        ``repro.optreport/v1`` artifacts and carried by
        :class:`repro.check.checker.CheckUnit` into batch workers."""
        return {
            "name": self.name,
            "threads": [
                [op.to_payload() for op in ops] for ops in self.threads
            ],
        }

    @staticmethod
    def from_payload(payload: Mapping[str, Any]) -> "Program":
        threads = payload.get("threads")
        if not isinstance(threads, (list, tuple)):
            raise ValueError("bad IR program payload: no 'threads' list")
        return Program(
            threads=tuple(
                tuple(Op.from_payload(op) for op in ops) for ops in threads
            ),
            name=str(payload.get("name", "")),
        )


def instrument_naive(program: Program) -> Program:
    """Insert the Fig. 3 naive-persistence instrumentation: a clwb of the
    stored line plus an sfence after every *durable* store.

    This is the program shape pmem/ADR-era software emits — each persist
    made durable and ordered by hand — and the optimizer's canonical
    input: the pass pipeline then removes whatever each scheme's
    :attr:`~repro.core.registry.SchemeInfo.ordering_contract` subsumes.
    Volatile stores (and programs lifted without an ``is_persistent``
    predicate) are left alone.
    """
    threads: List[Tuple[Op, ...]] = []
    for ops in program.threads:
        out: List[Op] = []
        for op in ops:
            out.append(op)
            if op.kind is OpKind.STORE and op.durable:
                out.append(Op(OpKind.FLUSH, addr=op.addr,
                              origin=INSTRUMENT_FLUSH, durable=True))
                out.append(Op(OpKind.FENCE, origin=INSTRUMENT_FENCE))
        threads.append(tuple(out))
    return program.with_threads(tuple(threads))
