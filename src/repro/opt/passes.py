"""Optimizer passes: removal-only rewrites over the program IR.

A pass is a pure per-thread function ``(ops, ctx) -> ops`` registered
with :func:`register_pass`.  Two hard rules keep the pipeline verifiable:

1. **Removal-only.**  A pass returns a *subsequence* of its input ops —
   it may drop ops, never insert, reorder, or mutate them (the surviving
   ops are the same objects).  :func:`removed_positions` exploits this to
   recover exactly which input positions a pass deleted, and the verifier
   (:mod:`repro.opt.verify`) re-justifies every deletion with independent
   predicates.  :func:`apply_pass` enforces the rule structurally.

2. **Capability-gated elision.**  Scheme-dependent passes consult only
   :attr:`~repro.core.registry.SchemeInfo.ordering_contract` — which
   persist-instrumentation kinds the scheme's hardware subsumes — never
   scheme names.  bbb/bbb-proc/eadr subsume everything (PoV == PoP, the
   paper's claim); pmem keeps its flushes and fences (they *are* its
   durability mechanism); bep keeps its epoch boundaries; ``none`` keeps
   flush;fence chains (under Px86-TSO they are the only ordering
   control).

The scheme-independent passes remove only what is redundant on any
scheme: a clwb of a line the thread never dirtied (or already flushed),
an sfence with no clwb outstanding since the previous sfence, and a
store immediately overwritten by an adjacent same-address store (the
coalesced run retires as one persist).

``opt-drop-epoch-fence`` is the registered *mutant* pass — deliberately
unsound, excluded from every default pipeline — which drops all fences
and epoch boundaries regardless of contract; the verifier must flag it
under any scheme whose ordering contract requires them (pmem, bep).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Tuple

from repro.core.registry import (
    ORDERING_EPOCH,
    ORDERING_FENCE,
    ORDERING_FLUSH,
    SchemeInfo,
)
from repro.mem.block import block_address
from repro.opt.ir import Op, Program
from repro.sim.trace import OpKind

__all__ = [
    "PassContext",
    "PassInfo",
    "apply_pass",
    "iter_passes",
    "pass_info",
    "pass_names",
    "register_pass",
    "removed_positions",
]

ThreadOps = Tuple[Op, ...]
PassFn = Callable[[ThreadOps, "PassContext"], ThreadOps]


@dataclass(frozen=True)
class PassContext:
    """Everything a pass may consult: the scheme's capability descriptor
    and the cache-block geometry (for line-granular flush reasoning)."""

    scheme: SchemeInfo
    block_size: int = 64


@dataclass(frozen=True)
class PassInfo:
    """Registry entry for one pass."""

    name: str
    fn: PassFn
    doc: str
    #: Consults the scheme's ordering contract (elides subsumed kinds).
    contract_gated: bool = False
    #: Deliberately unsound; excluded from default pipelines, exists to
    #: prove the verifier has teeth.
    mutant: bool = False


_PASSES: Dict[str, PassInfo] = {}


def register_pass(
    name: str, *, doc: str, contract_gated: bool = False,
    mutant: bool = False,
) -> Callable[[PassFn], PassFn]:
    """Decorator registering a per-thread pass function under ``name``."""

    def decorator(fn: PassFn) -> PassFn:
        if name in _PASSES:
            raise ValueError(f"optimizer pass {name!r} already registered")
        _PASSES[name] = PassInfo(
            name=name, fn=fn, doc=doc, contract_gated=contract_gated,
            mutant=mutant,
        )
        return fn

    return decorator


def pass_info(name: str) -> PassInfo:
    try:
        return _PASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown optimizer pass {name!r}; valid passes: "
            f"{', '.join(pass_names(include_mutants=True))}"
        ) from None


def iter_passes() -> Iterator[PassInfo]:
    return iter(tuple(_PASSES.values()))


def pass_names(include_mutants: bool = False) -> Tuple[str, ...]:
    return tuple(
        info.name for info in iter_passes()
        if include_mutants or not info.mutant
    )


def removed_positions(before: ThreadOps, after: ThreadOps) -> List[int]:
    """Input positions a removal-only pass deleted.

    Alignment is by object identity: a conforming pass returns the *same*
    op objects it kept, so a single forward walk recovers the removals.
    Raises ``ValueError`` when ``after`` is not an identity-subsequence of
    ``before`` — i.e. the pass inserted, reordered, or rebuilt ops,
    violating the removal-only contract the verifier depends on."""
    removed: List[int] = []
    j = 0
    for i, op in enumerate(before):
        if j < len(after) and after[j] is op:
            j += 1
        else:
            removed.append(i)
    if j != len(after):
        raise ValueError(
            "pass output is not an identity-subsequence of its input — "
            "optimizer passes must only remove ops, never insert, "
            "reorder, or rebuild them"
        )
    return removed


def apply_pass(program: Program, name: str, ctx: PassContext) -> Program:
    """Apply one registered pass to every thread, enforcing the
    removal-only contract (see :func:`removed_positions`)."""
    info = pass_info(name)
    threads = []
    for ops in program.threads:
        out = tuple(info.fn(ops, ctx))
        removed_positions(ops, out)  # raises on a non-subsequence
        threads.append(out)
    return program.with_threads(tuple(threads))


# ----------------------------------------------------------------------
# Scheme-independent redundancy passes
# ----------------------------------------------------------------------

@register_pass(
    "coalesce-stores",
    doc="drop a store immediately overwritten by an adjacent store to "
        "the same address and size — the run coalesces into one persist "
        "(only adjacency makes this sound: a non-adjacent overwrite can "
        "be separated by stores whose intermediate durable states the "
        "persistency model exposes)",
)
def _coalesce_stores(ops: ThreadOps, ctx: PassContext) -> ThreadOps:
    out: List[Op] = []
    for i, op in enumerate(ops):
        if op.kind is OpKind.STORE and i + 1 < len(ops):
            nxt = ops[i + 1]
            if (nxt.kind is OpKind.STORE and nxt.addr == op.addr
                    and nxt.size == op.size and nxt.durable == op.durable):
                continue
        out.append(op)
    return tuple(out)


@register_pass(
    "drop-dead-flush",
    doc="drop a clwb of a line this thread never stored to — or has not "
        "stored to since its previous clwb of the same line (duplicate "
        "clwb elimination): there is nothing of ours for it to write back",
)
def _drop_dead_flush(ops: ThreadOps, ctx: PassContext) -> ThreadOps:
    dirty: set = set()  # lines this thread stored since their last flush
    out: List[Op] = []
    for op in ops:
        if op.kind is OpKind.STORE:
            dirty.add(block_address(op.addr, ctx.block_size))
            out.append(op)
        elif op.kind is OpKind.FLUSH:
            line = block_address(op.addr, ctx.block_size)
            if line in dirty:
                dirty.discard(line)
                out.append(op)
            # else: dead/duplicate clwb — drop it
        else:
            out.append(op)
    return tuple(out)


@register_pass(
    "weaken-fence",
    doc="drop an sfence with no clwb by this thread since the previous "
        "sfence — an sfence only orders the issuing core's outstanding "
        "flushes, so with none outstanding it is a timing no-op",
)
def _weaken_fence(ops: ThreadOps, ctx: PassContext) -> ThreadOps:
    pending = False  # a flush by this thread since the previous fence
    out: List[Op] = []
    for op in ops:
        if op.kind is OpKind.FLUSH:
            pending = True
            out.append(op)
        elif op.kind is OpKind.FENCE:
            if pending:
                pending = False
                out.append(op)
            # else: no outstanding clwb to order — drop it
        else:
            out.append(op)
    return tuple(out)


# ----------------------------------------------------------------------
# Contract-gated elision passes
# ----------------------------------------------------------------------

def _elide_kind(
    ops: ThreadOps, ctx: PassContext, op_kind: OpKind, ordering_kind: str
) -> ThreadOps:
    if not ctx.scheme.subsumes_ordering(ordering_kind):
        return ops
    return tuple(op for op in ops if op.kind is not op_kind)


@register_pass(
    "elide-flush",
    contract_gated=True,
    doc="remove every clwb when the scheme's ordering contract subsumes "
        "flushes (battery-backed store-commit persistence: the line is "
        "durable the moment the store commits)",
)
def _elide_flush(ops: ThreadOps, ctx: PassContext) -> ThreadOps:
    return _elide_kind(ops, ctx, OpKind.FLUSH, ORDERING_FLUSH)


@register_pass(
    "elide-fence",
    contract_gated=True,
    doc="remove every sfence when the scheme's ordering contract "
        "subsumes fences (persists already happen in visibility order)",
)
def _elide_fence(ops: ThreadOps, ctx: PassContext) -> ThreadOps:
    return _elide_kind(ops, ctx, OpKind.FENCE, ORDERING_FENCE)


@register_pass(
    "elide-epoch",
    contract_gated=True,
    doc="remove every epoch boundary when the scheme's ordering contract "
        "subsumes epochs (the scheme has no epoch semantics or is "
        "strictly stronger than epoch ordering)",
)
def _elide_epoch(ops: ThreadOps, ctx: PassContext) -> ThreadOps:
    return _elide_kind(ops, ctx, OpKind.EPOCH, ORDERING_EPOCH)


# ----------------------------------------------------------------------
# The mutant pass (verifier teeth)
# ----------------------------------------------------------------------

@register_pass(
    "opt-drop-epoch-fence",
    mutant=True,
    doc="DELIBERATELY UNSOUND: drops every sfence and epoch boundary "
        "regardless of the scheme's ordering contract; the verifier must "
        "catch it under any scheme that requires them (pmem, bep)",
)
def _drop_epoch_fence(ops: ThreadOps, ctx: PassContext) -> ThreadOps:
    return tuple(
        op for op in ops if op.kind not in (OpKind.FENCE, OpKind.EPOCH)
    )
