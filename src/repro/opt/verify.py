"""The optimizer's verification layer: every removal justified, every
rewritten program re-checked.

The pass pipeline (:mod:`repro.opt.pipeline`) earns zero trust by
construction — its output is accepted only when three independent layers
of evidence agree:

1.  **The removal audit** (:func:`audit_pipeline`).  Passes are
    removal-only (:func:`repro.opt.passes.removed_positions` recovers the
    exact deleted positions), so every single deleted op can be
    re-justified against the *pre-pass* program with predicates
    implemented here, independently of the pass code: a deletion stands
    only if the op's kind is subsumed by the scheme's declared
    :attr:`~repro.core.registry.SchemeInfo.ordering_contract` or one of
    the redundancy predicates (:func:`flush_is_redundant`,
    :func:`fence_is_redundant`, :func:`store_is_coalescible`) confirms it
    was a no-op at its position.  Loads and computes are never
    justifiable.  This is the layer with teeth against a plausible-but-
    wrong pass: the shipped mutant ``opt-drop-epoch-fence`` deletes
    load-bearing sfences under pmem and epoch boundaries under bep, and
    the audit names each one by provenance.

2.  **Crash-checker equivalence** (:func:`verify_workload_cell`).  The
    optimized program runs through the same exhaustive crash-state
    explorer as the naive one (:class:`repro.check.checker.CheckUnit`
    with an embedded IR-program payload) — same contract, golden, and
    structural oracles — and must be at least as consistent: optimization
    never turns a consistent program inconsistent (an input already
    violating the scheme's discipline is recorded, not blamed on the
    pipeline).  The final durable images of both programs, taken at the
    final micro-step crash point so battery-covered domains are drained,
    must match byte-for-byte over the persistent region
    (:func:`final_image_fingerprint`) wherever the scheme's contract
    promises exact durability — epoch contracts legitimately leave
    different (all epoch-consistent) prefixes durable.  A regression is ddmin-minimized
    through the shared checker path into a replayable counterexample.

3.  **Litmus gating** (:func:`verify_litmus_cell`).  The optimized form
    of each litmus test is crash-swept exactly like the battery sweeps
    the naive form, and every observed durable state must lie inside the
    allowed set of the *original* test under the scheme's declared
    persistency model — elision may shrink the reachable set, never grow
    it.  A forbidden observation is ddmin-minimized over the *removal
    set* (which deletions, re-applied to the original, still break it),
    the exact shape an optimizer bug report needs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.check.schedule import CrashSchedule
from repro.core.registry import (
    MODEL_UNDECLARED,
    ORDERING_EPOCH,
    ORDERING_FENCE,
    ORDERING_FLUSH,
    scheme_info,
)
from repro.mem.block import block_address
from repro.obs.bus import NULL_BUS
from repro.obs.events import OptCellVerified
from repro.opt.ir import Op, Program, instrument_naive
from repro.opt.passes import PassContext, pass_info, removed_positions
from repro.opt.pipeline import DEFAULT_PIPELINE, run_pipeline
from repro.sim.trace import OpKind

__all__ = [
    "AuditResult",
    "audit_pipeline",
    "fence_is_redundant",
    "final_image_fingerprint",
    "flush_is_redundant",
    "removal_justified",
    "store_is_coalescible",
    "verify_litmus_cell",
    "verify_workload_cell",
]

#: ddmin oracle-call budget for minimizing a forbidden removal set.
REMOVAL_MINIMIZE_BUDGET = 64


# ----------------------------------------------------------------------
# Independent redundancy predicates
# ----------------------------------------------------------------------
#
# These deliberately re-derive, from first principles and separately from
# the pass implementations, whether an op could have had any effect at
# its position.  A pass and its predicate agreeing is evidence; a pass
# citing its own reasoning would be circular.

def flush_is_redundant(
    ops: Sequence[Op], i: int, block_size: int = 64
) -> bool:
    """A clwb at ``i`` is redundant iff this thread has not stored to its
    line since the line's previous clwb (or ever): walking back, a store
    to the same block means the flush has work to do; another flush of
    the same block — or the start of the thread — means it does not."""
    line = block_address(ops[i].addr, block_size)
    for j in range(i - 1, -1, -1):
        op = ops[j]
        if op.kind is OpKind.STORE and block_address(
            op.addr, block_size
        ) == line:
            return False
        if op.kind is OpKind.FLUSH and block_address(
            op.addr, block_size
        ) == line:
            return True
    return True


def fence_is_redundant(ops: Sequence[Op], i: int) -> bool:
    """An sfence at ``i`` is redundant iff this thread has no clwb
    outstanding since its previous sfence: walking back, a flush means the
    fence orders it; another fence — or the start — means nothing is
    outstanding."""
    for j in range(i - 1, -1, -1):
        kind = ops[j].kind
        if kind is OpKind.FLUSH:
            return False
        if kind is OpKind.FENCE:
            return True
    return True


def store_is_coalescible(ops: Sequence[Op], i: int) -> bool:
    """A store at ``i`` may be dropped iff the *immediately next* op is a
    store to the same address, size, and durability — the pair coalesces
    into one persist with no op between them that could expose the
    intermediate value.  Non-adjacent overwrites are never coalescible:
    an intervening op can be an ordering point the persistency model
    exposes."""
    if i + 1 >= len(ops):
        return False
    op, nxt = ops[i], ops[i + 1]
    return (
        nxt.kind is OpKind.STORE
        and nxt.addr == op.addr
        and nxt.size == op.size
        and nxt.durable == op.durable
    )


#: OpKind -> the ordering-contract kind whose subsumption justifies
#: removing it outright.
_CONTRACT_KIND = {
    OpKind.FLUSH: ORDERING_FLUSH,
    OpKind.FENCE: ORDERING_FENCE,
    OpKind.EPOCH: ORDERING_EPOCH,
}

#: OpKind -> the positional redundancy predicate that can justify a
#: removal when the contract does not.
_REDUNDANCY = {
    OpKind.FLUSH: lambda ops, i, bs: flush_is_redundant(ops, i, bs),
    OpKind.FENCE: lambda ops, i, bs: fence_is_redundant(ops, i),
    OpKind.STORE: lambda ops, i, bs: store_is_coalescible(ops, i),
}


def removal_justified(
    ops: Sequence[Op], i: int, ctx: PassContext
) -> Tuple[bool, str]:
    """Judge one removal against the pre-pass thread ``ops``.  Returns
    ``(justified, why)`` — ``why`` names the accepting rule or the
    objection."""
    op = ops[i]
    contract_kind = _CONTRACT_KIND.get(op.kind)
    if contract_kind is not None and ctx.scheme.subsumes_ordering(
        contract_kind
    ):
        return True, (
            f"scheme {ctx.scheme.name!r} ordering contract subsumes "
            f"{contract_kind}"
        )
    predicate = _REDUNDANCY.get(op.kind)
    if predicate is not None and predicate(ops, i, ctx.block_size):
        if op.kind is OpKind.STORE:
            return True, "coalesces into the adjacent same-address store"
        return True, "redundant at its position"
    if op.kind in (OpKind.LOAD, OpKind.COMPUTE):
        return False, f"a {op.kind.value} op is never removable"
    return False, (
        f"not subsumed by scheme {ctx.scheme.name!r}'s ordering contract "
        f"{ctx.scheme.ordering_contract!r} and not redundant at its "
        f"position"
    )


# ----------------------------------------------------------------------
# The removal audit
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AuditResult:
    """Stepwise re-application of a pipeline with every removal judged."""

    scheme: str
    program: Program
    optimized: Program
    passes: Tuple[str, ...]
    #: ``(pass, thread, position, op description, objection)`` rows for
    #: every removal no independent rule justified.  Empty == sound.
    violations: Tuple[Tuple[str, int, int, str, str], ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe_violations(self) -> List[str]:
        return [
            f"pass {name!r}: thread {tid} op {pos}: removed "
            f"[{desc}] — {why}"
            for name, tid, pos, desc, why in self.violations
        ]


def audit_pipeline(
    program: Program,
    scheme: str,
    passes: Optional[Sequence[str]] = None,
    block_size: int = 64,
) -> AuditResult:
    """Re-apply ``passes`` step by step, judging every removal against the
    program each pass actually saw (see module docstring, layer 1)."""
    info = scheme_info(scheme)
    ctx = PassContext(scheme=info, block_size=block_size)
    names = tuple(passes if passes is not None else DEFAULT_PIPELINE)
    current = program
    violations: List[Tuple[str, int, int, str, str]] = []
    for name in names:
        fn = pass_info(name).fn
        threads = []
        for tid, ops in enumerate(current.threads):
            out = tuple(fn(ops, ctx))
            for pos in removed_positions(ops, out):
                ok, why = removal_justified(ops, pos, ctx)
                if not ok:
                    violations.append(
                        (name, tid, pos, ops[pos].describe(), why)
                    )
            threads.append(out)
        current = current.with_threads(tuple(threads))
    return AuditResult(
        scheme=info.name, program=program, optimized=current,
        passes=names, violations=tuple(violations),
    )


# ----------------------------------------------------------------------
# Dynamic oracles
# ----------------------------------------------------------------------

def final_image_fingerprint(
    media, is_persistent: Callable[[int], bool]
) -> str:
    """SHA-256 over the persistent region's written blocks — the durable
    image a crash-free run leaves.  Optimization must preserve this
    bit-for-bit: elision changes *when* data persists, never what the
    completed program persisted."""
    h = hashlib.sha256()
    for baddr in sorted(media.written_blocks()):
        if not is_persistent(baddr):
            continue
        data = media.peek_block(baddr)
        h.update(baddr.to_bytes(8, "little"))
        for off in sorted(data.bytes):
            h.update(bytes((off, data.bytes[off])))
    return h.hexdigest()


def _run_to_completion(program: Program, scheme: str, entries, config,
                       seed_media=None) -> str:
    """Run ``program`` to its *final micro-step crash point* (firing after
    the last op) and fingerprint the durable image.

    The crash-point route matters: for schemes whose battery covers
    volatile structures (eADR and friends) a clean run's media image is
    not the durable state — the final point's ``crash_drain`` is what
    flushes the covered domain, yielding the full-store image the scheme
    actually guarantees."""
    from repro.api import RunOptions, build_system

    trace = program.to_trace()

    def crashed_system(schedule):
        system = build_system(
            scheme, entries=entries, config=config,
            options=RunOptions(crash_schedule=schedule),
        )
        if seed_media is not None:
            seed_media(system.nvmm_media)
        return system

    counting = CrashSchedule(stop_at=None)
    counting_system = crashed_system(counting)
    counting_system.run(trace)
    if counting.visits == 0:
        # A fully-elided program retires no ops, so no crash point ever
        # fires; with nothing in flight the clean-run media already is
        # the durable image.
        return final_image_fingerprint(
            counting_system.nvmm_media, config.mem.is_persistent
        )
    system = crashed_system(CrashSchedule(stop_at=counting.visits))
    system.run(trace)
    return final_image_fingerprint(
        system.nvmm_media, config.mem.is_persistent
    )


def verify_workload_cell(
    workload: str,
    scheme: str,
    spec=None,
    config=None,
    entries: int = 8,
    passes: Optional[Sequence[str]] = None,
    max_points: Optional[int] = None,
    sample_seed: int = 0,
    minimize: bool = True,
    bus=NULL_BUS,
) -> Dict[str, Any]:
    """Verify one (workload x scheme x pipeline) cell end to end.

    Instruments the workload's program naively, runs the pipeline, audits
    every removal, and then demands dynamic equivalence: identical
    crash-free final durable images and an optimized crash exploration
    exactly as consistent as the naive one.  Returns a JSON-able cell
    with ``ok``/``failures`` plus elision stats; a checker regression is
    ddmin-minimized into ``counterexample``.
    """
    from repro.analysis.experiments import default_sim_config
    from repro.check.checker import CheckUnit, explore
    from repro.workloads.base import make_workload

    cfg = config or default_sim_config()
    info = scheme_info(scheme)
    wl = make_workload(workload, cfg.mem, spec)
    naive = instrument_naive(wl.build_program())
    result = run_pipeline(naive, scheme, passes=passes,
                          block_size=cfg.block_size, bus=bus)
    audit = audit_pipeline(naive, scheme, passes=passes,
                           block_size=cfg.block_size)
    failures: List[str] = audit.describe_violations()

    fp_naive = _run_to_completion(naive, scheme, entries, cfg,
                                  wl.seed_media)
    fp_opt = _run_to_completion(result.optimized, scheme, entries, cfg,
                                wl.seed_media)
    # Image equality is an oracle only where the scheme's contract
    # promises byte-exact durability — mirroring the checker's golden
    # differential.  An epoch contract legitimately leaves different
    # (all epoch-consistent) prefixes durable with and without clwbs;
    # there the epoch oracle in the exploration below is the gate.
    if info.exact_durability and fp_naive != fp_opt:
        failures.append(
            f"final durable images differ: naive {fp_naive[:16]}… vs "
            f"optimized {fp_opt[:16]}…"
        )

    base_unit = CheckUnit(
        scheme=scheme, workload=workload, spec=spec, entries=entries,
        config=config, max_points=max_points, sample_seed=sample_seed,
        program=naive.to_payload(),
    )
    opt_unit = replace(base_unit, program=result.optimized.to_payload())
    naive_verdicts, naive_total, _ = explore(base_unit)
    opt_verdicts, opt_total, _ = explore(opt_unit)
    naive_ok = all(v.consistent for v in naive_verdicts)
    opt_ok = all(v.consistent for v in opt_verdicts)
    counterexample = None
    # The gate is one-directional: optimization must never make a
    # consistent program inconsistent.  An input that is *already*
    # inconsistent under the scheme (e.g. pmem-style mid-epoch clwbs
    # break BEP's epoch atomicity) is the programmer's discipline
    # mismatch, not an optimizer regression — the cell records it.
    if naive_ok and not opt_ok:
        first = next(v for v in opt_verdicts if not v.consistent)
        failures.append(
            f"checker regression: naive program consistent at all "
            f"{naive_total} points, optimized inconsistent (first "
            f"violation: {first.violations[0]})"
        )
        if minimize:
            from repro.check.minimize import minimize_counterexample

            cex = minimize_counterexample(opt_unit, first)
            counterexample = {
                "num_ops": cex.num_ops,
                "crash_point": cex.point,
                "site": cex.site,
                "violations": list(cex.violations),
            }

    elided = naive.total_ops - result.optimized.total_ops
    if bus.enabled:
        bus.emit(OptCellVerified(
            cycle=0, scheme=result.scheme, program=naive.name,
            elided=elided, violations=len(failures),
        ))
    return {
        "workload": workload,
        "scheme": result.scheme,
        "passes": list(audit.passes),
        "ops_naive": naive.total_ops,
        "ops_optimized": result.optimized.total_ops,
        "elided": elided,
        "flush_fence_elision_pct": round(
            result.flush_fence_elision_pct, 2
        ),
        "checker_points": {"naive": naive_total, "optimized": opt_total},
        "naive_consistent": naive_ok,
        "optimized_consistent": opt_ok,
        "final_fingerprint": fp_opt,
        "fingerprints_equal": fp_naive == fp_opt,
        "fingerprint_gated": info.exact_durability,
        "ok": not failures,
        "failures": failures,
        "counterexample": counterexample,
    }


# ----------------------------------------------------------------------
# Litmus gating
# ----------------------------------------------------------------------

def _sweep_states(trace, scheme: str, entries: int, config, test, addrs):
    """Crash-sweep ``trace`` exactly like the battery sweeps a cell;
    returns ``{state: first-seen provenance}``."""
    from repro.litmus.dsl import observe_state
    from repro.litmus.runner import _build_system

    schedule = CrashSchedule(stop_at=None)
    system = _build_system(scheme, None, entries, config, schedule)
    system.run(trace)
    total = schedule.visits
    observed: Dict[Tuple[int, ...], Dict[str, Any]] = {}
    for k in range(1, total + 1):
        schedule = CrashSchedule(stop_at=k)
        system = _build_system(scheme, None, entries, config, schedule)
        result = system.run(trace)
        state = observe_state(system.nvmm_media, test, addrs)
        if state not in observed:
            site = result.crash_point.site if result.crash_point else ""
            observed[state] = {"stop_at": k, "site": site}
    return observed, total


def _minimize_removals(
    program: Program,
    optimized: Program,
    test,
    addrs,
    allowed,
    scheme: str,
    entries: int,
    config,
    budget: int = REMOVAL_MINIMIZE_BUDGET,
) -> Dict[str, Any]:
    """ddmin over the *removal set*: the smallest subset of the pipeline's
    deletions that, applied alone to the original program, still drives a
    forbidden durable state.  Sound by construction — every candidate
    contains every original op except removals under test, and the
    allowed set of the original test stays the correct reference."""
    from repro.check.minimize import _ddmin

    removals: List[Tuple[int, int]] = []  # (thread, position)
    for tid, ops in enumerate(program.threads):
        for pos in removed_positions(ops, optimized.threads[tid]):
            removals.append((tid, pos))

    def candidate(subset: List[Tuple[int, int]]) -> Program:
        drop = set(subset)
        return program.with_threads(tuple(
            tuple(op for pos, op in enumerate(ops)
                  if (tid, pos) not in drop)
            for tid, ops in enumerate(program.threads)
        ))

    def oracle(subset):
        if not subset:
            return None
        observed, _ = _sweep_states(
            candidate(subset).to_trace(), scheme, entries, config,
            test, addrs,
        )
        for state in sorted(observed):
            if state not in allowed:
                return (state, observed[state])
        return None

    minimal, (state, prov), tests_run = _ddmin(removals, oracle, budget)
    return {
        "removals": [
            {"thread": tid, "position": pos,
             "op": program.threads[tid][pos].describe()}
            for tid, pos in minimal
        ],
        "forbidden_state": list(state),
        "stop_at": prov["stop_at"],
        "site": prov["site"],
        "tests_run": tests_run,
    }


def verify_litmus_cell(
    test,
    scheme: str,
    config=None,
    entries: int = 8,
    passes: Optional[Sequence[str]] = None,
    minimize: bool = True,
    bus=NULL_BUS,
) -> Dict[str, Any]:
    """Verify one (litmus test x scheme x pipeline) cell: lower to IR,
    optimize, audit every removal, crash-sweep the optimized program, and
    gate every observed durable state against the allowed set of the
    *original* test under the scheme's declared persistency model.
    Elision may make allowed states unreachable; it must never expose a
    forbidden one.  Returns a JSON-able cell; a forbidden observation is
    ddmin-minimized over the removal set."""
    from repro.analysis.experiments import default_sim_config
    from repro.litmus.dsl import lower_program
    from repro.litmus.models import allowed_states

    cfg = config or default_sim_config()
    info = scheme_info(scheme)
    program, addrs = lower_program(test, cfg)
    result = run_pipeline(program, scheme, passes=passes,
                          block_size=cfg.block_size, bus=bus)
    audit = audit_pipeline(program, scheme, passes=passes,
                           block_size=cfg.block_size)
    failures: List[str] = audit.describe_violations()

    observed, points = _sweep_states(
        result.optimized.to_trace(), scheme, entries, cfg, test, addrs
    )
    declared = info.persistency_model
    forbidden: List[Tuple[int, ...]] = []
    counterexample = None
    if declared != MODEL_UNDECLARED:
        allowed = allowed_states(test, declared)
        forbidden = sorted(s for s in observed if s not in allowed)
        for state in forbidden:
            failures.append(
                f"optimized {test.name!r} under {info.name!r} observed "
                f"{state}, forbidden by its declared {declared!r} model "
                f"(crash point {observed[state]['stop_at']}, site "
                f"{observed[state]['site']!r})"
            )
        if forbidden and minimize:
            counterexample = _minimize_removals(
                program, result.optimized, test, addrs, allowed,
                info.name, entries, cfg,
            )

    elided = program.total_ops - result.optimized.total_ops
    if bus.enabled:
        bus.emit(OptCellVerified(
            cycle=0, scheme=info.name, program=test.name,
            elided=elided, violations=len(failures),
        ))
    return {
        "test": test.name,
        "scheme": info.name,
        "declared_model": declared,
        "passes": list(audit.passes),
        "ops_naive": program.total_ops,
        "ops_optimized": result.optimized.total_ops,
        "elided": elided,
        "points": points,
        "observed_states": len(observed),
        "forbidden": [list(s) for s in forbidden],
        "ok": not failures,
        "failures": failures,
        "counterexample": counterexample,
    }
