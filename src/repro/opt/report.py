"""Optimizer reporting: the fig7-style naive-vs-optimized grid, the CI
smoke gate, and replayable ``repro.optreport/v1`` artifacts.

:func:`opt_compare` quantifies the paper's simplification claim as a
performance claim: for every (workload x scheme) cell it measures the
naively instrumented program (clwb+sfence after every persisting store —
the pmem/ADR discipline) against the pipeline-optimized one, on the same
simulator, and reports the cycle / NVMM-write / flush-fence-stall deltas
alongside the elision percentage.  On battery-backed schemes the pipeline
removes effectively all instrumentation and the stall delta is the
price ADR-era software pays for durability the hardware already
provides; on pmem the pipeline removes nothing and the deltas are ~0 —
the instrumentation is load-bearing there, which is exactly what the
ordering contract declares.

:func:`smoke_opt` is the CI gate: the full 7-workload x builtin-scheme
elision grid (audited, final images compared), a checker-clean
exploration sweep per scheme, the litmus smoke subset re-gated on every
cell the pipeline actually changed, and the ``opt-drop-epoch-fence``
mutant, which the removal audit must catch under every scheme whose
contract does not subsume both fences and epochs.

Reports are atomic, versioned JSON; ``repro opt --replay`` re-validates
an artifact's envelope (:func:`repro.ioutil.load_versioned_json`) and
re-executes its compare rows, checking elision and durable-image
equality reproduce.
"""

from __future__ import annotations

from dataclasses import astuple
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.bus import NULL_BUS
from repro.opt.ir import Op, Program, instrument_naive
from repro.opt.pipeline import MUTANT_PIPELINE, run_pipeline
from repro.opt.verify import (
    audit_pipeline,
    verify_litmus_cell,
    verify_workload_cell,
)
from repro.sim.trace import OpKind

__all__ = [
    "OPT_SCHEMA",
    "compare_cell",
    "opt_compare",
    "render_compare_table",
    "replay_report",
    "smoke_opt",
    "write_report",
]

#: Versioned schema identifier of optimizer reports and artifacts.
OPT_SCHEMA = "repro.optreport/v1"

#: Elision-percentage gates for the smoke grid: schemes whose contract
#: subsumes flushes+fences must shed at least this much of the naive
#: instrumentation; schemes that keep it must shed at most this much.
SMOKE_MIN_ELISION = 50.0
SMOKE_MAX_RESIDUAL_ELISION = 5.0


def _pct_delta(naive: float, optimized: float) -> float:
    if not naive:
        return 0.0
    return 100.0 * (optimized - naive) / naive


# ----------------------------------------------------------------------
# The compare grid (fig7-style)
# ----------------------------------------------------------------------

def compare_cell(
    workload: str, scheme: str, spec=None, entries: int = 8
) -> Dict[str, Any]:
    """One naive-vs-optimized measurement cell.  Module-level and
    picklable so the grid fans out through the batch runner."""
    from repro.analysis.experiments import default_sim_config, run_workload
    from repro.api import build_system
    from repro.core.registry import scheme_info
    from repro.opt.verify import _run_to_completion
    from repro.workloads.base import make_workload

    cfg = default_sim_config()
    info = scheme_info(scheme)
    wl = make_workload(workload, cfg.mem, spec)
    naive = instrument_naive(wl.build_program())
    result = run_pipeline(naive, scheme, block_size=cfg.block_size)
    audit = audit_pipeline(naive, scheme, block_size=cfg.block_size)

    def factory():
        return build_system(scheme, entries=entries, config=cfg)

    runs = {}
    for label, program in (("naive", naive),
                           ("optimized", result.optimized)):
        runs[label] = run_workload(
            workload, factory, spec, cfg,
            trace=program.to_trace(), initial_words=wl.initial_words,
        )
    fp_naive = _run_to_completion(naive, scheme, entries, cfg,
                                  wl.seed_media)
    fp_opt = _run_to_completion(result.optimized, scheme, entries, cfg,
                                wl.seed_media)

    def stall(run) -> int:
        return sum(int(core["stall_cycles_flush_fence"])
                   for core in run.stats["cores"])

    naive_run, opt_run = runs["naive"], runs["optimized"]
    return {
        "workload": workload,
        "scheme": result.scheme,
        "ops_naive": naive.total_ops,
        "ops_optimized": result.optimized.total_ops,
        "flush_fence_elision_pct": round(
            result.flush_fence_elision_pct, 2
        ),
        "cycles_naive": naive_run.execution_cycles,
        "cycles_optimized": opt_run.execution_cycles,
        "cycles_delta_pct": round(_pct_delta(
            naive_run.execution_cycles, opt_run.execution_cycles
        ), 2),
        "nvmm_writes_naive": naive_run.nvmm_writes,
        "nvmm_writes_optimized": opt_run.nvmm_writes,
        "nvmm_writes_delta_pct": round(_pct_delta(
            naive_run.nvmm_writes, opt_run.nvmm_writes
        ), 2),
        "stall_cycles_naive": stall(naive_run),
        "stall_cycles_optimized": stall(opt_run),
        "audit_ok": audit.ok,
        "audit_violations": audit.describe_violations(),
        "fingerprints_equal": fp_naive == fp_opt,
        # Image equality gates only exact-durability contracts (epoch
        # contracts legitimately leave different durable prefixes).
        "image_ok": fp_naive == fp_opt or not info.exact_durability,
    }


def opt_compare(
    workloads: Optional[Sequence[str]] = None,
    schemes: Optional[Sequence[str]] = None,
    spec=None,
    entries: int = 8,
    jobs: Optional[int] = None,
    progress=None,
    policy=None,
) -> Dict[str, Any]:
    """The full naive-vs-optimized grid as a ``repro.optreport/v1``
    report: ``workloads`` (default: all seven) x ``schemes`` (default:
    every registered scheme), fanned out through the hardened batch
    runner.  Plugin schemes registered only in this process need
    ``jobs=1``."""
    from repro.analysis.batch import run_tasks
    from repro.core.registry import iter_schemes
    from repro.workloads.base import WORKLOAD_NAMES

    workload_list = list(workloads) if workloads else list(WORKLOAD_NAMES)
    scheme_list = (list(schemes) if schemes
                   else [info.name for info in iter_schemes()])
    tasks = [
        (compare_cell, (w, s, spec, entries), {})
        for s in scheme_list
        for w in workload_list
    ]
    rows = [
        row for row in
        run_tasks(tasks, jobs=jobs, progress=progress, policy=policy)
        if row is not None
    ]

    by_scheme: Dict[str, Dict[str, Any]] = {}
    for scheme in scheme_list:
        cells = [r for r in rows if r["scheme"] == scheme]
        if not cells:
            continue
        by_scheme[scheme] = {
            "mean_elision_pct": round(
                sum(c["flush_fence_elision_pct"] for c in cells)
                / len(cells), 2
            ),
            "mean_cycles_delta_pct": round(
                sum(c["cycles_delta_pct"] for c in cells) / len(cells), 2
            ),
            "stall_cycles_naive": sum(
                c["stall_cycles_naive"] for c in cells
            ),
            "stall_cycles_optimized": sum(
                c["stall_cycles_optimized"] for c in cells
            ),
            "all_audits_ok": all(c["audit_ok"] for c in cells),
            "all_images_ok": all(c["image_ok"] for c in cells),
        }
    return {
        "schema": OPT_SCHEMA,
        "kind": "compare",
        "workloads": workload_list,
        "schemes": scheme_list,
        "spec": list(astuple(spec)) if spec is not None else None,
        "entries": entries,
        "rows": rows,
        "by_scheme": by_scheme,
    }


def render_compare_table(report: Dict[str, Any]) -> str:
    """ASCII view of a compare report: one row per (workload, scheme)."""
    from repro.analysis.tables import render_table

    rows = [
        (
            r["workload"], r["scheme"],
            f"{r['flush_fence_elision_pct']:.1f}%",
            r["cycles_naive"], r["cycles_optimized"],
            f"{r['cycles_delta_pct']:+.1f}%",
            r["nvmm_writes_naive"], r["nvmm_writes_optimized"],
            r["stall_cycles_naive"], r["stall_cycles_optimized"],
            "ok" if r["audit_ok"] and r["image_ok"] else "FAIL",
        )
        for r in report["rows"]
    ]
    return render_table(
        ["workload", "scheme", "elided", "cyc naive", "cyc opt",
         "cyc Δ", "nvmm naive", "nvmm opt", "stall naive", "stall opt",
         "verified"],
        rows,
        title="naive instrumentation vs persist-optimized (per scheme)",
    )


# ----------------------------------------------------------------------
# Artifacts: write + replay
# ----------------------------------------------------------------------

def write_report(report: Dict[str, Any], path: str) -> str:
    """Atomically write a versioned optimizer report; returns ``path``."""
    from repro.ioutil import atomic_write_json

    return atomic_write_json(path, report)


def replay_report(path: str, jobs: Optional[int] = None) -> Dict[str, Any]:
    """Re-execute a compare artifact: validate the envelope (schema
    version + kind — raises :class:`repro.ioutil.ArtifactError` on a
    truncated or mismatched file *before* touching the payload), re-run
    every cell, and check elision, audit, and durable-image equality
    reproduce.  Returns ``{"reproduced", "mismatches", "artifact"}``."""
    from repro.ioutil import load_versioned_json
    from repro.workloads.base import WorkloadSpec

    artifact = load_versioned_json(path, OPT_SCHEMA, kind="compare")
    spec = (WorkloadSpec(*artifact["spec"])
            if artifact.get("spec") is not None else None)
    mismatches: List[str] = []
    for row in artifact["rows"]:
        fresh = compare_cell(
            row["workload"], row["scheme"], spec, artifact["entries"]
        )
        for key in ("flush_fence_elision_pct", "ops_optimized",
                    "audit_ok", "image_ok"):
            if fresh[key] != row[key]:
                mismatches.append(
                    f"{row['workload']} x {row['scheme']}: {key} was "
                    f"{row[key]!r}, replayed as {fresh[key]!r}"
                )
    return {
        "reproduced": not mismatches,
        "mismatches": mismatches,
        "artifact": artifact,
    }


# ----------------------------------------------------------------------
# The CI smoke gate
# ----------------------------------------------------------------------

def _smoke_spec():
    from repro.workloads.base import WorkloadSpec

    return WorkloadSpec(threads=2, ops=6, elements=128, seed=11)


def _mutant_probe_program() -> Program:
    """A tiny synthetic program exercising every removable kind, so the
    mutant audit has both a load-bearing sfence (preceded by a clwb) and
    epoch boundaries to judge."""
    from repro.analysis.experiments import default_sim_config

    base = default_sim_config().mem.persistent_base
    ops = []
    for i in range(2):
        addr = base + 64 * (i + 1)
        ops.extend([
            Op(OpKind.STORE, addr=addr, value=i + 1,
               origin="mutant-probe", durable=True),
            Op(OpKind.FLUSH, addr=addr, origin="mutant-probe",
               durable=True),
            Op(OpKind.FENCE, origin="mutant-probe"),
            Op(OpKind.EPOCH, origin="mutant-probe"),
        ])
    return Program(threads=(tuple(ops),), name="mutant-probe")


def smoke_opt(jobs: Optional[int] = None, progress=None,
              bus=NULL_BUS) -> Dict[str, Any]:
    """The CI gate (see module docstring).  Returns ``{"ok", "failures",
    "grid", "checker_cells", "litmus_cells", "mutant"}``; ``ok`` is False
    on any audit violation, elision outside its scheme-class gate, image
    divergence, checker regression, litmus regression, or an uncaught
    mutant."""
    from repro.analysis.experiments import default_sim_config
    from repro.core.registry import (
        ORDERING_EPOCH,
        ORDERING_FENCE,
        ORDERING_FLUSH,
        iter_schemes,
        scheme_info,
    )
    from repro.litmus.corpus import smoke_corpus
    from repro.litmus.dsl import lower_program
    from repro.opt.verify import _run_to_completion
    from repro.workloads.base import WORKLOAD_NAMES, make_workload

    spec = _smoke_spec()
    cfg = default_sim_config()
    schemes = [info.name for info in iter_schemes()]
    failures: List[str] = []

    # 1. The elision grid: every workload x every scheme, audited, final
    #    images compared, elision gated per scheme class.
    grid: List[Dict[str, Any]] = []
    for scheme in schemes:
        info = scheme_info(scheme)
        subsumes_all = (info.subsumes_ordering(ORDERING_FLUSH)
                        and info.subsumes_ordering(ORDERING_FENCE))
        for workload in WORKLOAD_NAMES:
            wl = make_workload(workload, cfg.mem, spec)
            naive = instrument_naive(wl.build_program())
            result = run_pipeline(naive, scheme,
                                  block_size=cfg.block_size, bus=bus)
            audit = audit_pipeline(naive, scheme,
                                   block_size=cfg.block_size)
            fp_equal = (
                _run_to_completion(naive, scheme, 8, cfg, wl.seed_media)
                == _run_to_completion(result.optimized, scheme, 8, cfg,
                                      wl.seed_media)
            )
            image_ok = fp_equal or not info.exact_durability
            pct = result.flush_fence_elision_pct
            cell = {
                "workload": workload, "scheme": scheme,
                "flush_fence_elision_pct": round(pct, 2),
                "audit_ok": audit.ok,
                "fingerprints_equal": fp_equal,
                "image_ok": image_ok,
            }
            grid.append(cell)
            tag = f"{workload} x {scheme}"
            if not audit.ok:
                failures.append(
                    f"{tag}: {audit.describe_violations()[0]}"
                )
            if not image_ok:
                failures.append(f"{tag}: final durable images differ")
            if subsumes_all and pct < SMOKE_MIN_ELISION:
                failures.append(
                    f"{tag}: contract subsumes flush+fence but only "
                    f"{pct:.1f}% of the instrumentation was elided"
                )
            if not subsumes_all and pct > SMOKE_MAX_RESIDUAL_ELISION:
                failures.append(
                    f"{tag}: contract keeps flush/fence yet {pct:.1f}% "
                    f"was elided — a pass is over-reaching"
                )

    # 2. Checker-clean sweep: one workload explored exhaustively per
    #    scheme, naive vs optimized, same oracles.
    checker_cells: List[Dict[str, Any]] = []
    for scheme in schemes:
        cell = verify_workload_cell(
            "hashmap", scheme, spec=spec, entries=8, bus=bus
        )
        checker_cells.append(cell)
        failures.extend(
            f"checker {cell['workload']} x {scheme}: {msg}"
            for msg in cell["failures"]
        )

    # 3. Litmus smoke subset, re-gated wherever the pipeline changed the
    #    program (unchanged cells are already covered by the battery).
    litmus_cells: List[Dict[str, Any]] = []
    for scheme in schemes:
        for test in smoke_corpus():
            program, _ = lower_program(test, cfg)
            result = run_pipeline(program, scheme,
                                  block_size=cfg.block_size)
            if result.optimized.total_ops == program.total_ops:
                continue
            cell = verify_litmus_cell(test, scheme, config=cfg, bus=bus)
            litmus_cells.append(cell)
            failures.extend(
                f"litmus {test.name} x {scheme}: {msg}"
                for msg in cell["failures"]
            )

    # 4. The mutant: the removal audit must flag opt-drop-epoch-fence
    #    under every scheme whose contract does not subsume both fences
    #    and epochs, and must accept it where the contract does (on bbb
    #    the mutant is accidentally sound).
    probe = _mutant_probe_program()
    mutant: Dict[str, Any] = {"pass": MUTANT_PIPELINE[0], "caught": {}}
    for scheme in schemes:
        info = scheme_info(scheme)
        audit = audit_pipeline(probe, scheme, passes=MUTANT_PIPELINE)
        expected_caught = not (
            info.subsumes_ordering(ORDERING_FENCE)
            and info.subsumes_ordering(ORDERING_EPOCH)
        )
        mutant["caught"][scheme] = not audit.ok
        if expected_caught and audit.ok:
            failures.append(
                f"mutant {MUTANT_PIPELINE[0]!r} not caught under "
                f"{scheme!r} — the removal audit has lost its teeth"
            )
        if not expected_caught and not audit.ok:
            failures.append(
                f"mutant {MUTANT_PIPELINE[0]!r} flagged under {scheme!r} "
                f"whose contract subsumes fences and epochs: "
                f"{audit.describe_violations()[0]}"
            )
    if not any(mutant["caught"].values()):
        failures.append(
            f"mutant {MUTANT_PIPELINE[0]!r} caught under no scheme"
        )

    return {
        "schema": OPT_SCHEMA,
        "kind": "smoke",
        "ok": not failures,
        "failures": failures,
        "grid": grid,
        "checker_cells": checker_cells,
        "litmus_cells": litmus_cells,
        "mutant": mutant,
    }
