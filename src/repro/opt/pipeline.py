"""The pass pipeline: ordered pass application with elision accounting.

:func:`run_pipeline` applies a sequence of registered passes
(:mod:`repro.opt.passes`) to an IR program under one scheme's capability
descriptor and returns a :class:`PipelineResult`: the optimized program
plus per-pass, per-kind removal counts — the raw material of the
"elided-instruction percentage" the paper's simplification claim turns
into (``repro opt --compare``).

The default pipeline runs the scheme-independent redundancy passes
first (so even flush-keeping schemes shed dead clwbs and no-op sfences),
then the contract-gated elision passes, which consult
:attr:`~repro.core.registry.SchemeInfo.ordering_contract` and remove
only the kinds the scheme's hardware subsumes.  Pipelines are just name
tuples — callers can reorder, subset, or extend them with their own
registered passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.registry import scheme_info
from repro.obs.bus import NULL_BUS
from repro.obs.events import OptPassApplied
from repro.opt.ir import Program
from repro.opt.passes import PassContext, apply_pass, pass_info

__all__ = [
    "DEFAULT_PIPELINE",
    "MUTANT_PIPELINE",
    "PassApplication",
    "PipelineResult",
    "run_pipeline",
]

#: The canonical sound pipeline: scheme-independent redundancy removal
#: first, then contract-gated elision.
DEFAULT_PIPELINE: Tuple[str, ...] = (
    "coalesce-stores",
    "drop-dead-flush",
    "weaken-fence",
    "elide-flush",
    "elide-fence",
    "elide-epoch",
)

#: The deliberately broken pipeline (verifier teeth): drops fences and
#: epoch boundaries regardless of the scheme's ordering contract.
MUTANT_PIPELINE: Tuple[str, ...] = ("opt-drop-epoch-fence",)

#: The instrumentation kinds elision percentages are quoted over.
_FLUSH_FENCE = ("flush", "fence")


@dataclass(frozen=True)
class PassApplication:
    """One pass's effect: ops removed, by kind and in total."""

    name: str
    removed_by_kind: Tuple[Tuple[str, int], ...]

    @property
    def removed(self) -> int:
        return sum(n for _, n in self.removed_by_kind)


@dataclass(frozen=True)
class PipelineResult:
    """The outcome of one (program x scheme x pipeline) optimization."""

    scheme: str
    program: Program          # the input (naive) program
    optimized: Program
    passes: Tuple[PassApplication, ...]

    @property
    def input_counts(self) -> Dict[str, int]:
        return self.program.kind_counts()

    @property
    def output_counts(self) -> Dict[str, int]:
        return self.optimized.kind_counts()

    def removed_of(self, kind: str) -> int:
        inc, outc = self.input_counts, self.output_counts
        return inc.get(kind, 0) - outc.get(kind, 0)

    def elision_pct(self, kinds: Sequence[str] = _FLUSH_FENCE) -> float:
        """Percentage of the input's ``kinds`` ops the pipeline removed
        (0.0 when the input had none — nothing to elide)."""
        inc, outc = self.input_counts, self.output_counts
        total = sum(inc.get(k, 0) for k in kinds)
        if not total:
            return 0.0
        kept = sum(outc.get(k, 0) for k in kinds)
        return 100.0 * (total - kept) / total

    @property
    def flush_fence_elision_pct(self) -> float:
        """The headline number: % of clwb+sfence instrumentation elided."""
        return self.elision_pct(_FLUSH_FENCE)


def run_pipeline(
    program: Program,
    scheme: str,
    passes: Optional[Sequence[str]] = None,
    block_size: int = 64,
    bus=NULL_BUS,
) -> PipelineResult:
    """Apply ``passes`` (default :data:`DEFAULT_PIPELINE`) to ``program``
    under ``scheme``'s capability descriptor."""
    info = scheme_info(scheme)
    ctx = PassContext(scheme=info, block_size=block_size)
    names = tuple(passes if passes is not None else DEFAULT_PIPELINE)
    for name in names:
        pass_info(name)  # fail fast on unknown pass names
    current = program
    applications = []
    for name in names:
        before = current.kind_counts()
        current = apply_pass(current, name, ctx)
        after = current.kind_counts()
        removed = tuple(
            (kind, before[kind] - after[kind])
            for kind in sorted(before)
            if before[kind] != after[kind]
        )
        app = PassApplication(name=name, removed_by_kind=removed)
        applications.append(app)
        if bus.enabled:
            bus.emit(OptPassApplied(
                cycle=0, scheme=info.name, program=program.name,
                pass_name=name, removed=app.removed,
                remaining=current.total_ops,
            ))
    return PipelineResult(
        scheme=info.name, program=program, optimized=current,
        passes=tuple(applications),
    )
