"""The persist optimizer: pass pipeline over the unified program IR.

The BBB paper's core claim is that battery-backed persist buffers make
the persistence domain equal the coherence domain, so the clwb/sfence
discipline naive persistent programming inherits from the pmem/ADR era
is *redundant by construction*.  This package turns that claim into a
checkable, measurable compiler-style transformation:

- :mod:`repro.opt.ir` — one canonical :class:`~repro.opt.ir.Program`
  representation (per-op provenance + durable-location metadata),
  lossless to and from executable traces, workloads, litmus tests, and
  the columnar form;
- :mod:`repro.opt.passes` — registered removal-only passes:
  scheme-independent redundancy elimination plus elision gated purely on
  :attr:`~repro.core.registry.SchemeInfo.ordering_contract`;
- :mod:`repro.opt.pipeline` — ordered pass application with per-pass
  elision accounting;
- :mod:`repro.opt.verify` — the trust layer: an independent per-removal
  audit, exhaustive crash-checker equivalence, and litmus-model gating,
  with ddmin-minimized counterexamples on regression;
- :mod:`repro.opt.report` — the fig7-style naive-vs-optimized grid, the
  CI smoke gate, and replayable ``repro.optreport/v1`` artifacts.

Everything dispatches on registered scheme *capabilities*, never scheme
names — a plugin scheme that declares its ``ordering_contract`` gets the
whole pipeline, verifier included, with zero core edits (see
``examples/custom_scheme.py``).
"""

from repro.opt.ir import (
    INSTRUMENT_FENCE,
    INSTRUMENT_FLUSH,
    Op,
    Program,
    instrument_naive,
)
from repro.opt.passes import (
    PassContext,
    PassInfo,
    apply_pass,
    iter_passes,
    pass_info,
    pass_names,
    register_pass,
    removed_positions,
)
from repro.opt.pipeline import (
    DEFAULT_PIPELINE,
    MUTANT_PIPELINE,
    PassApplication,
    PipelineResult,
    run_pipeline,
)
from repro.opt.report import (
    OPT_SCHEMA,
    compare_cell,
    opt_compare,
    render_compare_table,
    replay_report,
    smoke_opt,
    write_report,
)
from repro.opt.verify import (
    AuditResult,
    audit_pipeline,
    fence_is_redundant,
    final_image_fingerprint,
    flush_is_redundant,
    removal_justified,
    store_is_coalescible,
    verify_litmus_cell,
    verify_workload_cell,
)

__all__ = [
    "AuditResult",
    "DEFAULT_PIPELINE",
    "INSTRUMENT_FENCE",
    "INSTRUMENT_FLUSH",
    "MUTANT_PIPELINE",
    "OPT_SCHEMA",
    "Op",
    "PassApplication",
    "PassContext",
    "PassInfo",
    "PipelineResult",
    "Program",
    "apply_pass",
    "audit_pipeline",
    "compare_cell",
    "fence_is_redundant",
    "final_image_fingerprint",
    "flush_is_redundant",
    "instrument_naive",
    "iter_passes",
    "opt_compare",
    "pass_info",
    "pass_names",
    "register_pass",
    "removal_justified",
    "removed_positions",
    "render_compare_table",
    "replay_report",
    "run_pipeline",
    "smoke_opt",
    "store_is_coalescible",
    "verify_litmus_cell",
    "verify_workload_cell",
    "write_report",
]
