"""Unit tests for the crash-schedule primitive (repro.check.schedule)."""

import pytest

from repro.check.schedule import (
    ALL_SITES,
    NULL_SCHEDULE,
    CrashNow,
    CrashSchedule,
    SITE_DRAIN,
    SITE_OP,
    SITE_POV,
)


class TestNullSchedule:
    def test_disabled(self):
        assert not NULL_SCHEDULE.enabled

    def test_reached_is_a_noop(self):
        NULL_SCHEDULE.reached(SITE_OP, 5)
        assert NULL_SCHEDULE.visits == 0


class TestCounting:
    def test_unbounded_schedule_never_fires(self):
        s = CrashSchedule(stop_at=None)
        for i in range(10):
            s.reached(SITE_OP, i)
        assert s.visits == 10
        assert s.fired is None

    def test_site_counts(self):
        s = CrashSchedule(stop_at=None)
        s.reached(SITE_OP, 1)
        s.reached(SITE_POV, 2)
        s.reached(SITE_OP, 3)
        assert s.site_counts == {SITE_OP: 2, SITE_POV: 1}


class TestFiring:
    def test_fires_at_exactly_stop_at(self):
        s = CrashSchedule(stop_at=3)
        s.reached(SITE_OP, 1)
        s.reached(SITE_POV, 2)
        with pytest.raises(CrashNow) as exc:
            s.reached(SITE_DRAIN, 7, addr=0x40)
        point = exc.value.point
        assert point.index == 3
        assert point.site == SITE_DRAIN
        assert point.cycle == 7
        assert point.addr == 0x40
        assert s.fired == point

    def test_stop_at_must_be_positive(self):
        with pytest.raises(ValueError):
            CrashSchedule(stop_at=0)

    def test_site_filter_hides_excluded_visits(self):
        s = CrashSchedule(stop_at=2, sites=(SITE_POV,))
        s.reached(SITE_OP, 1)   # filtered out: not a visit
        s.reached(SITE_POV, 2)  # visit 1
        assert s.visits == 1
        with pytest.raises(CrashNow):
            s.reached(SITE_POV, 3)

    def test_all_sites_is_complete(self):
        assert SITE_OP in ALL_SITES and SITE_POV in ALL_SITES
        assert len(ALL_SITES) == 5
