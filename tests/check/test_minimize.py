"""Tests for counterexample minimization and replay (repro.check.minimize)."""

import pytest

from repro.check.checker import CheckUnit, explore
from repro.check.minimize import (
    _ddmin,
    flatten_trace,
    minimize_counterexample,
    rebuild_trace,
    replay_artifact,
    write_counterexample,
)
from repro.sim.trace import ProgramTrace, ThreadTrace, TraceOp
from repro.workloads.base import WorkloadSpec

TINY = WorkloadSpec(threads=2, ops=3, elements=64, seed=11)


class TestFlatten:
    def test_roundtrip_preserves_per_thread_order(self):
        t0 = [TraceOp.store(64 * i, i) for i in range(3)]
        t1 = [TraceOp.load(64 * i) for i in range(2)]
        trace = ProgramTrace([ThreadTrace(t0), ThreadTrace(t1)])
        flat = flatten_trace(trace)
        assert len(flat) == 5
        rebuilt = rebuild_trace(flat, 2)
        assert rebuilt.threads[0].ops == t0
        assert rebuilt.threads[1].ops == t1

    def test_rebuild_allows_empty_threads(self):
        trace = rebuild_trace([(1, TraceOp.fence())], 3)
        assert trace.num_threads == 3
        assert len(trace.threads[0].ops) == 0
        assert len(trace.threads[1].ops) == 1


class TestDdmin:
    def test_finds_minimal_pair(self):
        items = list(range(20))

        def test_fn(subset):
            return ("bad",) if {3, 7} <= set(subset) else None

        minimal, info, tests = _ddmin(items, test_fn, budget=256)
        assert sorted(minimal) == [3, 7]
        assert info == ("bad",)
        assert tests <= 256

    def test_single_failing_element(self):
        def test_fn(subset):
            return ("bad",) if 5 in subset else None

        minimal, _, _ = _ddmin(list(range(16)), test_fn, budget=256)
        assert minimal == [5]

    def test_passing_input_rejected(self):
        with pytest.raises(ValueError):
            _ddmin([1, 2], lambda s: None, budget=10)

    def test_budget_bounds_oracle_calls(self):
        calls = []

        def test_fn(subset):
            calls.append(1)
            return ("bad",) if {3, 7} <= set(subset) else None

        _ddmin(list(range(64)), test_fn, budget=9)
        assert len(calls) <= 9


class TestMinimizeMutant:
    @pytest.fixture(scope="class")
    def cex(self):
        unit = CheckUnit(scheme="bbb", mutant="bbb-delayed-alloc", spec=TINY)
        verdicts, _, _ = explore(unit)
        first_bad = next(v for v in verdicts if not v.consistent)
        return minimize_counterexample(unit, first_bad)

    def test_minimized_to_at_most_six_ops(self, cex):
        assert 1 <= cex.num_ops <= 6

    def test_violations_recorded(self, cex):
        assert cex.violations
        assert cex.point >= 1

    def test_artifact_roundtrip_reproduces(self, cex, tmp_path):
        path = str(tmp_path / "cex.json")
        write_counterexample(cex, path)
        out = replay_artifact(path)
        assert out["reproduced"]
        assert out["violations"]
        assert out["artifact"]["num_ops"] == cex.num_ops

    def test_replay_rejects_non_artifact(self, tmp_path):
        from repro.ioutil import atomic_write_json

        path = str(tmp_path / "not-cex.json")
        atomic_write_json(path, {"schema": "other/v1"})
        with pytest.raises(ValueError):
            replay_artifact(path)
