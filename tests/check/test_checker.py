"""Tests for the crash-consistency model checker (repro.check.checker)."""

import pytest

from repro.api import RunOptions, build_system
from repro.check.checker import (
    CHECK_SCHEMA,
    CheckUnit,
    build_report,
    count_micro_points,
    diff_golden,
    durable_fingerprint,
    explore,
    golden_expected,
    publish_report,
    run_check_unit,
)
from repro.check.schedule import CrashSchedule, SITE_OP, SITE_POV
from repro.mem.block import BlockData
from repro.obs.bus import EventBus, EventRecorder
from repro.workloads.base import WorkloadSpec
from tests.conftest import paddr, single_thread_trace
from repro.sim.trace import TraceOp

#: Small enough for exhaustive exploration in well under a second.
TINY = WorkloadSpec(threads=2, ops=3, elements=64, seed=11)


class TestEngineIntegration:
    """The schedule hooks must fire inside a real run and leave a crashed,
    recoverable system behind."""

    def test_crash_point_recorded_on_result(self, small_config):
        ops = [TraceOp.store(paddr(small_config, i), i + 1) for i in range(4)]
        trace = single_thread_trace(*ops)
        schedule = CrashSchedule(stop_at=2)
        system = build_system("bbb", config=small_config,
                              options=RunOptions(crash_schedule=schedule))
        result = system.run(trace)
        assert result.crashed
        assert result.crash_point is not None
        assert result.crash_point.index == 2

    def test_disabled_schedule_changes_nothing(self, small_config):
        ops = [TraceOp.store(paddr(small_config, i), i + 1) for i in range(4)]
        trace = single_thread_trace(*ops)
        plain = build_system("bbb", config=small_config).run(trace)
        counted = CrashSchedule(stop_at=None)
        hooked = build_system("bbb", config=small_config,
                              options=RunOptions(crash_schedule=counted)).run(trace)
        assert not hooked.crashed
        assert plain.stats.nvmm_writes == hooked.stats.nvmm_writes
        assert counted.visits > 0

    def test_pov_crash_keeps_bbb_exact(self, small_config):
        """Crash in the PoV window: the in-flight store sits in the
        battery-backed SB, every earlier store in a bbPB — nothing
        committed may be lost."""
        from repro.core.recovery import check_exact_durability

        ops = [TraceOp.store(paddr(small_config, i), i + 1) for i in range(4)]
        trace = single_thread_trace(*ops)
        schedule = CrashSchedule(stop_at=3, sites=(SITE_POV,))
        system = build_system("bbb", config=small_config,
                              options=RunOptions(crash_schedule=schedule))
        result = system.run(trace)
        assert result.crashed
        check = check_exact_durability(
            system.nvmm_media, result.committed_persists
        )
        assert check.consistent, check.violations


class TestCounting:
    def test_counting_is_deterministic(self):
        unit = CheckUnit(scheme="bbb", spec=TINY)
        a = count_micro_points(unit)
        b = count_micro_points(unit)
        assert a == b
        assert a[0] == sum(a[1].values())

    def test_site_filter_shrinks_the_space(self):
        full, _ = count_micro_points(CheckUnit(scheme="bbb", spec=TINY))
        ops_only, sites = count_micro_points(
            CheckUnit(scheme="bbb", spec=TINY, sites=(SITE_OP,))
        )
        assert ops_only < full
        assert set(sites) == {SITE_OP}


class TestOracles:
    def test_golden_expected_overlays_persists_on_seeds(self):
        recs = [type("R", (), {"addr": 64, "value": 0xAB, "size": 1})()]
        image = golden_expected({0: 0x11}, recs)
        assert image[0].read(0) == 0x11
        assert image[64].read(0) == 0xAB

    def test_diff_golden_catches_lost_and_extra_bytes(self, small_config):
        media = build_system("bbb", config=small_config).nvmm_media
        base = small_config.mem.persistent_base
        data = BlockData()
        data.write_word(0, 0x1234, 8)
        media.write_block(base, data)
        # lost byte: golden expects a second block the media never got
        expected = {
            base: data.copy(),
            base + 64: BlockData({0: 0x99}),
        }
        v = diff_golden(media, expected, small_config.mem.is_persistent)
        assert any("golden mismatch" in s for s in v)
        # extra byte: media holds a block golden never claimed
        v2 = diff_golden(media, {}, small_config.mem.is_persistent)
        assert v2

    def test_fingerprint_is_pure(self, small_config):
        sys_a = build_system("bbb", config=small_config)
        sys_b = build_system("bbb", config=small_config)
        for s in (sys_a, sys_b):
            data = BlockData()
            data.write_word(0, 7, 8)
            s.nvmm_media.write_block(small_config.mem.persistent_base, data)
        assert durable_fingerprint("bbb", sys_a.nvmm_media, [], []) == \
            durable_fingerprint("bbb", sys_b.nvmm_media, [], [])
        assert durable_fingerprint("bbb", sys_a.nvmm_media, [], []) != \
            durable_fingerprint("eadr", sys_b.nvmm_media, [], [])


class TestExplore:
    def test_bbb_exhaustive_is_violation_free(self):
        verdicts, total, _ = explore(CheckUnit(scheme="bbb", spec=TINY))
        assert len(verdicts) == total > 0
        bad = [v for v in verdicts if not v.consistent]
        assert not bad, bad[:3]

    def test_pruned_and_unpruned_verdicts_agree(self):
        unit = CheckUnit(scheme="bbb", spec=TINY, prune=True)
        pruned, _, _ = explore(unit)
        plain, _, _ = explore(CheckUnit(scheme="bbb", spec=TINY, prune=False))
        assert [(v.point, v.consistent, v.violations) for v in pruned] == \
            [(v.point, v.consistent, v.violations) for v in plain]
        assert any(v.pruned for v in pruned)
        assert not any(v.pruned for v in plain)

    def test_mutant_is_caught(self):
        unit = CheckUnit(scheme="bbb", mutant="bbb-delayed-alloc", spec=TINY)
        verdicts, _, _ = explore(unit)
        assert any(not v.consistent for v in verdicts)

    def test_max_points_samples_deterministically(self):
        unit = CheckUnit(scheme="bbb", spec=TINY, max_points=10, sample_seed=3)
        a, total, _ = explore(unit)
        b, _, _ = explore(unit)
        assert [v.point for v in a] == [v.point for v in b]
        assert len(a) == 10 < total


class TestReport:
    def test_report_shape_and_accounting(self):
        unit = CheckUnit(scheme="bbb", spec=TINY)
        report, verdicts = run_check_unit(unit, jobs=1)
        assert report["schema"] == CHECK_SCHEMA
        assert report["contract"] == "exact"
        assert report["checked_points"] == len(verdicts) == report["total_points"]
        assert report["explored"] + report["pruned"] == report["checked_points"]
        assert report["unique_states"] <= report["checked_points"]
        assert report["consistent"] and report["num_violations"] == 0

    def test_publish_report_emits_events_and_metrics(self):
        unit = CheckUnit(scheme="bbb", mutant="bbb-delayed-alloc", spec=TINY)
        report, _ = run_check_unit(unit, jobs=1)
        bus = EventBus()
        rec = EventRecorder(bus)
        reg = publish_report(report, bus=bus)
        counts = rec.counts()
        assert counts["check_state_explored"] == 1
        assert counts["check_violation"] >= 1
        assert reg.get("check.violations").value == report["num_violations"]
        assert reg.get("check.total_points").value == report["total_points"]

    def test_unknown_mutant_raises(self):
        from repro.check.mutants import build_mutant_system

        with pytest.raises(ValueError):
            build_mutant_system("no-such-mutant")
