"""Tests for the batch experiment runner (repro.analysis.batch).

The acceptance bar for the parallel fan-out is *bit-identical* results:
running a grid of simulations through a process pool must produce exactly
the same result list as running them serially in-process, because each
simulation is deterministic and the runner preserves submission order.
"""

import dataclasses

import pytest

from repro.analysis.batch import (
    RunSpec,
    decide_jobs,
    execute_spec,
    run_batch,
    run_tasks,
)
from repro.analysis.experiments import default_sim_config, fig7
from repro.workloads.base import WorkloadSpec

#: Small enough to keep the whole module under a few seconds.
SPEC = WorkloadSpec(threads=2, ops=40, elements=1024, seed=7)
WORKLOADS = ("hashmap", "mutateC")


def _grid_specs():
    return [
        RunSpec(workload=name, scheme=scheme, scheme_kwargs=kwargs, spec=SPEC)
        for name in WORKLOADS
        for scheme, kwargs in (("bbb", (("entries", 4),)), ("eadr", ()))
    ]


# ----------------------------------------------------------------------
# Parallel == serial
# ----------------------------------------------------------------------

def test_run_batch_parallel_identical_to_serial():
    specs = _grid_specs()
    serial = run_batch(specs, jobs=1)
    parallel = run_batch(specs, jobs=2)
    assert serial == parallel  # WorkloadRun dataclasses, field-exact
    assert [r.workload for r in serial] == [s.workload for s in specs]


def test_fig7_parallel_identical_to_serial():
    """Fig. 7a/7b on a reduced workload set: fanning the grid across a
    process pool must not change a single normalized value."""
    kwargs = dict(
        spec=SPEC,
        config=default_sim_config(),
        workloads=WORKLOADS,
        entries_variants=(4,),
    )
    serial = fig7(jobs=1, **kwargs)
    parallel = fig7(jobs=2, **kwargs)
    assert serial == parallel  # ExperimentResult of Fig7Rows, field-exact
    for row in serial.data:
        assert row.exec_time["Optimal (eADR)"] == pytest.approx(1.0)


def test_run_batch_matches_direct_execute():
    specs = _grid_specs()
    assert run_batch(specs, jobs=2) == [execute_spec(s) for s in specs]


# ----------------------------------------------------------------------
# Serial fallback paths
# ----------------------------------------------------------------------

def test_non_picklable_spec_falls_back_to_serial():
    """A spec carrying a closure cannot cross the process boundary; the
    runner must notice and run in-process with the same results."""
    specs = _grid_specs()
    tagged = [dataclasses.replace(s, label=lambda: None) for s in specs]
    assert run_batch(tagged, jobs=4) == run_batch(specs, jobs=1)


def test_single_spec_runs_serially():
    (spec,) = _grid_specs()[:1]
    (result,) = run_batch([spec], jobs=8)
    assert result == execute_spec(spec)


def test_empty_batch():
    assert run_batch([], jobs=4) == []


# ----------------------------------------------------------------------
# Worker-count resolution
# ----------------------------------------------------------------------

def test_decide_jobs_explicit_wins(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "7")
    assert decide_jobs(3, num_items=100) == 3


def test_decide_jobs_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert decide_jobs(None, num_items=100) == 5


def test_decide_jobs_clamps_to_items(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "16")
    assert decide_jobs(None, num_items=3) == 3


def test_decide_jobs_rejects_bad_values(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "zero")
    with pytest.raises(ValueError):
        decide_jobs(None)
    monkeypatch.delenv("REPRO_JOBS")
    with pytest.raises(ValueError):
        decide_jobs(0)


def test_repro_jobs_one_forces_serial(monkeypatch):
    """REPRO_JOBS=1 is the documented escape hatch: results must still be
    identical to the parallel run."""
    specs = _grid_specs()
    monkeypatch.setenv("REPRO_JOBS", "1")
    env_serial = run_batch(specs)
    monkeypatch.delenv("REPRO_JOBS")
    assert env_serial == run_batch(specs, jobs=2)


# ----------------------------------------------------------------------
# Generic task fan-out
# ----------------------------------------------------------------------

def _square(x, offset=0):
    return x * x + offset


def test_run_tasks_preserves_order():
    tasks = [(_square, (i,), {"offset": 1}) for i in range(10)]
    assert run_tasks(tasks, jobs=4) == [i * i + 1 for i in range(10)]
    assert run_tasks(tasks, jobs=1) == [i * i + 1 for i in range(10)]
