"""Tests for the write-endurance model (repro.energy.endurance)."""

import math

import pytest

from repro.energy import endurance
from repro.mem.nvmm import NVMMedia
from repro.mem.block import BlockData


class TestConstants:
    def test_paper_endurance_ordering(self):
        """Section II-B: SRAM >> STT-RAM > ReRAM > PCM."""
        e = endurance.WRITE_ENDURANCE
        assert e["SRAM"] > e["STT-RAM"] > e["ReRAM"] > e["PCM"]

    def test_paper_values(self):
        assert endurance.WRITE_ENDURANCE["SRAM"] == 1e15
        assert endurance.WRITE_ENDURANCE["STT-RAM"] == 4e12
        assert endurance.WRITE_ENDURANCE["ReRAM"] == 1e11
        assert endurance.WRITE_ENDURANCE["PCM"] == 1e8


class TestLifetime:
    def test_basic_lifetime(self):
        # 100 writes/second against 1e8 endurance -> 1e6 seconds.
        est = endurance.lifetime(100, 1.0, "PCM")
        assert est.lifetime_seconds == pytest.approx(1e6)

    def test_lifetime_years(self):
        est = endurance.lifetime(1, 1.0, "PCM")  # 1 write/s
        assert est.lifetime_years == pytest.approx(1e8 / endurance.SECONDS_PER_YEAR)

    def test_zero_writes_is_infinite(self):
        assert math.isinf(endurance.lifetime(0, 1.0, "PCM").lifetime_seconds)

    def test_unknown_technology(self):
        with pytest.raises(KeyError):
            endurance.lifetime(1, 1.0, "DRAM")

    def test_zero_window_rejected(self):
        with pytest.raises(ValueError):
            endurance.lifetime(1, 0.0, "PCM")

    def test_higher_endurance_lives_longer(self):
        pcm = endurance.lifetime(100, 1.0, "PCM")
        stt = endurance.lifetime(100, 1.0, "STT-RAM")
        assert stt.lifetime_seconds > pcm.lifetime_seconds


class TestMediaLifetime:
    def test_from_media_counters(self):
        media = NVMMedia(base=0, size=1 << 20)
        for _ in range(10):
            media.write_block(0, BlockData({0: 1}))
        # 10 writes over 2e9 cycles @ 2 GHz = 1 second.
        est = endurance.media_lifetime(media, window_cycles=2_000_000_000)
        assert est.writes_per_second == pytest.approx(10.0)


class TestRelativeLifetime:
    def test_fewer_writes_live_longer(self):
        assert endurance.relative_lifetime(100, 50) == 2.0

    def test_equal_writes(self):
        assert endurance.relative_lifetime(100, 100) == 1.0

    def test_zero_scheme_writes_infinite(self):
        assert math.isinf(endurance.relative_lifetime(100, 0))

    def test_zero_baseline(self):
        assert endurance.relative_lifetime(0, 100) == 0.0


class TestNVCacheArgument:
    def test_l1_level_pcm_wears_out_fast(self):
        """The paper's argument against PCM NVCaches: at L1 store rates a
        PCM cache line lasts well under a day."""
        years = endurance.nvcache_lifetime_years(
            stores_per_cycle=0.2, technology="PCM"
        )
        assert years < 1 / 365  # under a day

    def test_sram_is_fine_at_the_same_rate(self):
        years = endurance.nvcache_lifetime_years(
            stores_per_cycle=0.2, technology="SRAM"
        )
        assert years > 1.0

    def test_stt_ram_beats_pcm(self):
        pcm = endurance.nvcache_lifetime_years(0.2, "PCM")
        stt = endurance.nvcache_lifetime_years(0.2, "STT-RAM")
        assert stt / pcm == pytest.approx(4e12 / 1e8)
