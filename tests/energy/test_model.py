"""Tests for the draining-cost model (repro.energy.model) against the
paper's published values (Tables V, VI, VII, VIII)."""

import pytest

from repro.energy import model
from repro.energy.platforms import MOBILE, MOBILE_CORE_AREA_MM2, PLATFORMS, SERVER

KB = 1024
MB = 1024 * 1024


class TestTable5Platforms:
    def test_mobile_spec(self):
        assert MOBILE.num_cores == 6
        assert MOBILE.l1_bytes_per_core == 128 * KB
        assert MOBILE.l2_bytes_total == 8 * MB
        assert MOBILE.l3_bytes_total == 0
        assert MOBILE.memory_channels == 2

    def test_server_spec(self):
        assert SERVER.num_cores == 32
        assert SERVER.l1_bytes_per_core == 32 * KB
        assert SERVER.l2_bytes_total == 32 * MB
        assert SERVER.l3_bytes_total == int(2 * 35.75 * MB)
        assert SERVER.memory_channels == 12

    def test_total_cache_sizes_match_paper(self):
        # "the total cache size for the system is 107MB and 8.75MB"
        assert MOBILE.total_cache_bytes == pytest.approx(8.75 * MB)
        assert SERVER.total_cache_bytes == pytest.approx(104.5 * MB, rel=0.03)

    def test_registry(self):
        assert PLATFORMS["mobile"] is MOBILE
        assert PLATFORMS["server"] is SERVER

    def test_core_area_constant(self):
        assert MOBILE_CORE_AREA_MM2 == 2.61


class TestTable6Constants:
    def test_sram_access_cost(self):
        assert model.SRAM_ACCESS_J_PER_BYTE == 1e-12

    def test_l1_and_bbpb_move_cost(self):
        assert model.L1_TO_NVMM_J_PER_BYTE == pytest.approx(11.839e-9)

    def test_l2_l3_move_cost(self):
        assert model.L2_TO_NVMM_J_PER_BYTE == pytest.approx(11.228e-9)
        assert model.LEVEL_ENERGY_J_PER_BYTE["L2"] == model.LEVEL_ENERGY_J_PER_BYTE["L3"]

    def test_dirty_fraction_matches_section5a(self):
        assert model.DEFAULT_DIRTY_FRACTION == 0.449


class TestTable7DrainEnergy:
    def test_mobile_eadr_energy(self):
        # Paper: 46.5 mJ
        assert model.eadr_drain_energy(MOBILE) == pytest.approx(46.5e-3, rel=0.02)

    def test_server_eadr_energy(self):
        # Paper: 550 mJ
        assert model.eadr_drain_energy(SERVER) == pytest.approx(550e-3, rel=0.02)

    def test_mobile_bbb_energy(self):
        # Paper: 145 uJ
        assert model.bbb_drain_energy(MOBILE) == pytest.approx(145e-6, rel=0.02)

    def test_server_bbb_energy(self):
        # Paper: 775 uJ
        assert model.bbb_drain_energy(SERVER) == pytest.approx(775e-6, rel=0.02)

    def test_mobile_ratio_320x(self):
        assert model.energy_ratio(MOBILE) == pytest.approx(320, rel=0.03)

    def test_server_ratio_709x(self):
        assert model.energy_ratio(SERVER) == pytest.approx(709, rel=0.03)

    def test_bbb_worst_case_independent_of_dirty_fraction(self):
        """BBB assumes its buffers are full (its own worst case)."""
        assert model.bbb_drain_energy(MOBILE, 32) == model.bbb_drain_energy(MOBILE, 32)
        assert model.bbb_drain_bytes(MOBILE, 32) == 6 * 32 * 64


class TestTable8DrainTime:
    def test_mobile_eadr_time(self):
        # Paper: 0.8 ms (rounded); bandwidth-model gives ~0.9 ms.
        t = model.eadr_cost(MOBILE).time_seconds
        assert 0.7e-3 <= t <= 1.0e-3

    def test_server_eadr_time(self):
        # Paper: 1.8 ms
        t = model.eadr_cost(SERVER).time_seconds
        assert t == pytest.approx(1.8e-3, rel=0.05)

    def test_mobile_bbb_time(self):
        # Paper: 2.6 us
        t = model.bbb_cost(MOBILE).time_seconds
        assert t == pytest.approx(2.6e-6, rel=0.05)

    def test_server_bbb_time(self):
        # Paper: 2.4 us
        t = model.bbb_cost(SERVER).time_seconds
        assert t == pytest.approx(2.4e-6, rel=0.05)

    def test_time_ratios_are_two_to_three_orders(self):
        # Paper: 307x mobile, 750x server.
        assert 250 <= model.time_ratio(MOBILE) <= 400
        assert 600 <= model.time_ratio(SERVER) <= 850


class TestDrainCostHelpers:
    def test_unit_accessors(self):
        cost = model.eadr_cost(MOBILE)
        assert cost.energy_mj == pytest.approx(cost.energy_joules * 1e3)
        assert cost.time_us == pytest.approx(cost.time_seconds * 1e6)

    def test_eadr_bytes_scale_with_dirty_fraction(self):
        full = sum(model.eadr_drain_bytes(MOBILE, 1.0).values())
        half = sum(model.eadr_drain_bytes(MOBILE, 0.5).values())
        assert half == pytest.approx(full / 2)
        assert full == MOBILE.total_cache_bytes

    def test_bbb_bytes_scale_with_entries(self):
        assert model.bbb_drain_bytes(MOBILE, 64) == 2 * model.bbb_drain_bytes(MOBILE, 32)

    def test_drain_time_scales_inverse_with_channels(self):
        t_mobile = model.drain_time_seconds(1e6, MOBILE)
        t_server = model.drain_time_seconds(1e6, SERVER)
        assert t_mobile / t_server == pytest.approx(
            SERVER.memory_channels / MOBILE.memory_channels
        )
