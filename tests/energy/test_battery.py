"""Tests for battery sizing (repro.energy.battery) against the paper's
Tables IX and X."""

import pytest

from repro.energy import battery
from repro.energy.platforms import MOBILE, SERVER


class TestWorstCaseEnergies:
    def test_battery_sized_for_all_dirty_not_average(self):
        """Table IX provisions for every block dirty, so the worst case must
        exceed the Table VII average (44.9% dirty) figure."""
        from repro.energy.model import eadr_drain_energy

        assert battery.eadr_worst_case_energy(MOBILE) > eadr_drain_energy(MOBILE)

    def test_bbb_worst_case_equals_average_case(self):
        """BBB's Table VII number already assumes full buffers."""
        from repro.energy.model import bbb_drain_energy

        assert battery.bbb_worst_case_energy(MOBILE) == pytest.approx(
            bbb_drain_energy(MOBILE)
        )


class TestTable9Volumes:
    # Paper values (mm^3): mobile eADR 2.9e3 / 30, BBB 4.1 / 0.04;
    # server eADR 34e3 / 300, BBB 21.6 / 0.21.
    @pytest.mark.parametrize(
        "platform,tech,expected,rel",
        [
            (MOBILE, "SuperCap", 2.9e3, 0.05),
            (MOBILE, "Li-thin", 30.0, 0.05),
            (SERVER, "SuperCap", 34e3, 0.05),
            (SERVER, "Li-thin", 300.0, 0.15),
        ],
    )
    def test_eadr_volumes(self, platform, tech, expected, rel):
        est = battery.eadr_battery(platform, tech)
        assert est.volume_mm3 == pytest.approx(expected, rel=rel)

    @pytest.mark.parametrize(
        "platform,tech,expected,rel",
        [
            (MOBILE, "SuperCap", 4.1, 0.05),
            (MOBILE, "Li-thin", 0.04, 0.05),
            (SERVER, "SuperCap", 21.6, 0.05),
            (SERVER, "Li-thin", 0.21, 0.05),
        ],
    )
    def test_bbb_volumes(self, platform, tech, expected, rel):
        est = battery.bbb_battery(platform, tech)
        assert est.volume_mm3 == pytest.approx(expected, rel=rel)

    def test_li_thin_is_100x_denser_than_supercap(self):
        a = battery.eadr_battery(MOBILE, "SuperCap").volume_mm3
        b = battery.eadr_battery(MOBILE, "Li-thin").volume_mm3
        assert a / b == pytest.approx(100)


class TestTable9AreaRatios:
    # Paper column (b): ratios to the 2.61 mm^2 mobile core.
    def test_mobile_eadr_supercap_about_77x(self):
        est = battery.eadr_battery(MOBILE, "SuperCap")
        assert est.core_area_ratio == pytest.approx(77, rel=0.05)

    def test_mobile_eadr_lithin_about_3_6x(self):
        est = battery.eadr_battery(MOBILE, "Li-thin")
        assert est.core_area_ratio == pytest.approx(3.6, rel=0.05)

    def test_server_eadr_supercap_about_404x(self):
        est = battery.eadr_battery(SERVER, "SuperCap")
        assert est.core_area_ratio == pytest.approx(404, rel=0.05)

    def test_server_eadr_lithin_about_18_7x(self):
        est = battery.eadr_battery(SERVER, "Li-thin")
        assert est.core_area_ratio == pytest.approx(18.7, rel=0.06)

    def test_mobile_bbb_supercap_under_one_core(self):
        est = battery.bbb_battery(MOBILE, "SuperCap")
        assert est.core_area_pct == pytest.approx(97.2, rel=0.05)

    def test_mobile_bbb_lithin_tiny(self):
        est = battery.bbb_battery(MOBILE, "Li-thin")
        assert est.core_area_pct == pytest.approx(4.5, rel=0.05)

    def test_server_bbb_supercap_about_3x(self):
        est = battery.bbb_battery(SERVER, "SuperCap")
        assert est.core_area_pct == pytest.approx(296, rel=0.05)

    def test_server_bbb_lithin(self):
        est = battery.bbb_battery(SERVER, "Li-thin")
        assert est.core_area_pct == pytest.approx(13.7, rel=0.05)

    def test_overall_volume_gap_707_to_1574x(self):
        """'the battery volume for BBB is between 707-1574x smaller'."""
        lo = battery.eadr_battery(MOBILE, "SuperCap").volume_mm3 / battery.bbb_battery(
            MOBILE, "SuperCap"
        ).volume_mm3
        hi = battery.eadr_battery(SERVER, "SuperCap").volume_mm3 / battery.bbb_battery(
            SERVER, "SuperCap"
        ).volume_mm3
        assert 650 <= lo <= 800
        assert 1400 <= hi <= 1700


class TestTable10Sweep:
    # Paper row values (SuperCap, mobile): 0.12, 0.50, 2.02, 4.1, 8.1,
    # 32.3, 129.3 for 1/4/16/32/64/256/1024 entries.
    def test_supercap_mobile_row(self):
        sweep = battery.battery_size_sweep(
            MOBILE, "SuperCap", (1, 4, 16, 32, 64, 256, 1024)
        )
        paper = {1: 0.12, 4: 0.50, 16: 2.02, 32: 4.1, 64: 8.1, 256: 32.3, 1024: 129.3}
        for entries, expected in paper.items():
            assert sweep[entries] == pytest.approx(expected, rel=0.06)

    def test_supercap_server_row(self):
        sweep = battery.battery_size_sweep(
            SERVER, "SuperCap", (1, 4, 16, 32, 64, 256, 1024)
        )
        paper = {1: 0.7, 4: 2.7, 16: 10.8, 32: 21.6, 64: 43.1, 256: 172.4, 1024: 689.7}
        for entries, expected in paper.items():
            assert sweep[entries] == pytest.approx(expected, rel=0.06)

    def test_lithin_rows_scale_down_100x(self):
        sc = battery.battery_size_sweep(MOBILE, "SuperCap", (32,))[32]
        li = battery.battery_size_sweep(MOBILE, "Li-thin", (32,))[32]
        assert sc / li == pytest.approx(100)

    def test_volume_linear_in_entries(self):
        sweep = battery.battery_size_sweep(SERVER, "Li-thin", (1, 2, 4))
        assert sweep[2] == pytest.approx(2 * sweep[1])
        assert sweep[4] == pytest.approx(4 * sweep[1])

    def test_1024_entry_bbb_still_far_cheaper_than_eadr(self):
        """Table X's point: even at 1024 entries BBB is 22-49x cheaper."""
        for platform, lo, hi in ((MOBILE, 20, 26), (SERVER, 45, 53)):
            eadr_vol = battery.eadr_battery(platform, "SuperCap").volume_mm3
            bbb_vol = battery.battery_size_sweep(platform, "SuperCap", (1024,))[1024]
            assert lo <= eadr_vol / bbb_vol <= hi
