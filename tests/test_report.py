"""Tests for the consolidated report generator (repro.analysis.report)."""

from pathlib import Path

from repro.analysis.report import EXHIBIT_ORDER, build_report, main


class TestBuildReport:
    def test_collates_existing_exhibits(self, tmp_path):
        out = tmp_path / "out"
        out.mkdir()
        (out / "test_table7_drain_energy.txt").write_text("TABLE 7 CONTENT")
        report = build_report(out)
        assert "TABLE 7 CONTENT" in report
        assert "Table VII" in report

    def test_missing_exhibits_listed(self, tmp_path):
        report = build_report(tmp_path)
        assert "Not yet generated" in report
        assert "Figure 8" in report

    def test_writes_report_file(self, tmp_path):
        target = tmp_path / "REPORT.md"
        build_report(tmp_path, target)
        assert target.exists()
        assert target.read_text().startswith("# Reproduction report")

    def test_every_benchmark_exhibit_is_indexed(self):
        """Every report()-archiving benchmark appears in the paper-order
        index (guards against new exhibits being forgotten)."""
        stems = {stem for _, stem in EXHIBIT_ORDER}
        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        import re

        declared = set()
        for path in bench_dir.glob("test_*.py"):
            declared.update(re.findall(r"def (test_\w+)\(", path.read_text()))
        # Exhibits must be a subset of declared benchmarks, and most
        # benchmarks should be indexed.
        assert stems <= declared
        assert len(stems) >= 18

    def test_main_cli(self, tmp_path, capsys):
        out = tmp_path / "out"
        out.mkdir()
        (out / "test_table7_drain_energy.txt").write_text("X")
        target = tmp_path / "R.md"
        assert main([str(out), str(target)]) == 0
        assert target.exists()
        assert "wrote" in capsys.readouterr().out
