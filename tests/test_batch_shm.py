"""Shared-memory columnar trace handoff (repro.analysis.batch): publish a
trace once, attach it zero-copy from workers, and fall back to worker-side
rebuilds whenever the segment is unusable — always with identical results."""

import dataclasses

import pytest

from repro.analysis.batch import (BatchPolicy, RunSpec, attach_columnar,
                                  run_batch, share_columnar, share_specs)
from repro.analysis.experiments import default_sim_config
from repro.core.registry import iter_schemes
from repro.sim.coltrace import columnar_of
from repro.workloads.base import WorkloadSpec, build_cached

SPEC = WorkloadSpec(threads=2, ops=25, elements=512, seed=9)


def _specs():
    out = []
    for workload in ("hashmap", "mutateC"):
        for info in iter_schemes():
            if not info.builtin or info.contract == "epoch":
                continue
            kwargs = (("entries", 8),) if info.has_persist_buffer else ()
            out.append(RunSpec(workload, info.name, kwargs, spec=SPEC))
    return out


def test_share_attach_roundtrip():
    cfg = default_sim_config()
    trace, words = build_cached("hashmap", cfg.mem, SPEC)
    cols = columnar_of(trace)
    with share_columnar(cols, words) as share:
        got, got_words = attach_columnar(share.manifest)
        assert got_words == words
        assert got.total_ops() == cols.total_ops()
        for a, b in zip(cols.threads, got.threads):
            assert a.column_lists() == b.column_lists()
            assert a.tags == b.tags


def test_share_specs_dedups_by_trace():
    specs = _specs()
    annotated, shares = share_specs(specs)
    try:
        assert len(annotated) == len(specs)
        manifests = {s.trace_shm for s in annotated}
        assert None not in manifests
        assert len(manifests) == len(shares) == 2  # one per workload
        # Annotation only touches trace_shm.
        for before, after in zip(specs, annotated):
            assert dataclasses.replace(after, trace_shm=None) == before
    finally:
        for share in shares:
            share.close()


def test_batch_results_identical_with_and_without_sharing():
    specs = _specs()[:6]
    base = run_batch(specs, jobs=1, share_traces=False)
    shared = run_batch(specs, jobs=1, share_traces=True)
    for a, b in zip(base, shared):
        assert a.stats == b.stats


def test_stale_manifest_falls_back_to_rebuild():
    specs = _specs()[:2]
    annotated, shares = share_specs(specs)
    for share in shares:  # unlink before the batch runs
        share.close()
    stale = [dataclasses.replace(s) for s in annotated]
    base = run_batch(specs, jobs=1, share_traces=False)
    got = run_batch(stale, jobs=1, share_traces=False)
    for a, b in zip(base, got):
        assert a.stats == b.stats


def test_checkpoint_policy_disables_auto_sharing(tmp_path):
    """Segment names vary per run; with a checkpoint configured the auto
    default must leave the specs untouched so fingerprints stay stable."""
    specs = _specs()[:3]
    policy = BatchPolicy(checkpoint=str(tmp_path / "ck.jsonl"))
    first = run_batch(specs, jobs=1, policy=policy)
    resumed = run_batch(specs, jobs=1, policy=policy)
    for a, b in zip(first, resumed):
        assert a.stats == b.stats
