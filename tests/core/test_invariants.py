"""Unit tests for the design-invariant auditors (repro.core.invariants)."""

import pytest

from repro.core.invariants import (
    InvariantViolation,
    check_all,
    check_llc_inclusion_of_bbpb,
    check_no_volatile_only_persistent_data,
    check_single_bbpb_residency,
)
from repro.mem.block import BlockData
from repro.api import build_system
from repro.sim.trace import TraceOp
from tests.conftest import paddr, single_thread_trace


@pytest.fixture
def system(small_config):
    return build_system("bbb", config=small_config, entries=8)


class TestCleanSystems:
    def test_fresh_system_passes(self, system):
        check_all(system)

    def test_after_normal_run_passes(self, system, small_config):
        trace = single_thread_trace(
            *[TraceOp.store(paddr(small_config, i), i + 1) for i in range(20)]
        )
        system.run(trace, finalize=False)
        check_all(system)

    def test_non_bbb_scheme_passes_vacuously(self, small_config):
        check_all(build_system("eadr", config=small_config))


class TestSeededViolations:
    def test_double_residency_detected(self, system, small_config):
        h = system.hierarchy
        x = paddr(small_config, 0)
        h.store(0, x, 8, 1, 0)
        # Seed the violation: force the same block into core 1's buffer.
        bx = x & ~(small_config.block_size - 1)
        system.scheme.buffers[1].put(bx, BlockData({0: 1}), 0)
        with pytest.raises(InvariantViolation, match="resides in bbPB"):
            check_single_bbpb_residency(system)

    def test_inclusion_violation_detected(self, system, small_config):
        h = system.hierarchy
        x = paddr(small_config, 0)
        h.store(0, x, 8, 1, 0)
        bx = x & ~(small_config.block_size - 1)
        h.llc.remove(bx)  # seed: evict LLC copy without the forced drain
        with pytest.raises(InvariantViolation, match="dirty inclusion"):
            check_llc_inclusion_of_bbpb(system)

    def test_volatile_only_persistent_data_detected(self, system, small_config):
        h = system.hierarchy
        x = paddr(small_config, 0)
        h.store(0, x, 8, 1, 0)
        bx = x & ~(small_config.block_size - 1)
        # Seed: drop the bbPB entry without draining (data now exists only
        # in the volatile caches).
        system.scheme.buffers[0].remove(bx)
        with pytest.raises(InvariantViolation, match="Invariant 3"):
            check_no_volatile_only_persistent_data(system)

    def test_drained_block_passes_invariant3(self, system, small_config):
        h = system.hierarchy
        x = paddr(small_config, 0)
        h.store(0, x, 8, 1, 0)
        bx = x & ~(small_config.block_size - 1)
        system.scheme.buffers[0].force_drain(bx, 10)  # durable now
        check_no_volatile_only_persistent_data(system)
