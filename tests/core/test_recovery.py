"""Unit tests for the recovery checkers (repro.core.recovery)."""

import pytest

from repro.core.recovery import (
    ConsistencyResult,
    check_epoch_consistency,
    check_exact_durability,
    check_prefix_consistency,
    replay_image,
)
from repro.mem.block import BlockData
from repro.mem.nvmm import NVMMedia
from repro.sim.engine import PersistRecord

BASE = 0x100000


def media():
    return NVMMedia(base=BASE, size=1 << 20, block_size=64)


def rec(core, addr, value, seq, size=8):
    return PersistRecord(core=core, addr=addr, size=size, value=value, seq=seq)


def persist(m, r):
    """Apply a record directly to media (simulates it being durable)."""
    baddr = r.addr & ~63
    data = BlockData()
    data.write_word(r.addr & 63, r.value, r.size)
    m.write_block(baddr, data)


class TestReplayImage:
    def test_single_store(self):
        image = replay_image([rec(0, BASE + 8, 0xAB, 1)])
        assert image[BASE].read_word(8) == 0xAB

    def test_later_store_wins(self):
        image = replay_image([rec(0, BASE, 1, 1), rec(0, BASE, 2, 2)])
        assert image[BASE].read_word(0) == 2

    def test_blocks_partitioned(self):
        image = replay_image([rec(0, BASE, 1, 1), rec(0, BASE + 64, 2, 2)])
        assert set(image) == {BASE, BASE + 64}

    def test_partial_overlap_merges_bytes(self):
        image = replay_image([rec(0, BASE, 0xAABBCCDD, 1, size=4),
                              rec(0, BASE + 2, 0x1122, 2, size=2)])
        assert image[BASE].read_word(0, 4) == 0x1122CCDD


class TestExactDurability:
    def test_all_durable_passes(self):
        m = media()
        records = [rec(0, BASE + i * 64, i + 1, i) for i in range(4)]
        for r in records:
            persist(m, r)
        assert check_exact_durability(m, records)

    def test_missing_store_fails(self):
        m = media()
        records = [rec(0, BASE, 1, 1), rec(0, BASE + 64, 2, 2)]
        persist(m, records[0])
        result = check_exact_durability(m, records)
        assert not result
        assert "0x100040" in result.violations[0]

    def test_stale_value_fails(self):
        m = media()
        records = [rec(0, BASE, 1, 1), rec(0, BASE, 2, 2)]
        persist(m, records[0])  # old value only
        assert not check_exact_durability(m, records)

    def test_empty_record_list_passes(self):
        assert check_exact_durability(media(), [])


class TestPrefixConsistency:
    def test_full_prefix_passes(self):
        m = media()
        records = [rec(0, BASE + i * 64, i + 1, i) for i in range(4)]
        for r in records[:2]:
            persist(m, r)
        assert check_prefix_consistency(m, records)

    def test_empty_durable_state_is_a_valid_prefix(self):
        records = [rec(0, BASE, 1, 1), rec(0, BASE + 64, 2, 2)]
        assert check_prefix_consistency(media(), records)

    def test_hole_in_prefix_fails(self):
        """Later store durable, earlier lost: the head-before-node bug."""
        m = media()
        node = rec(0, BASE, 0x1111, 1)
        head = rec(0, BASE + 64, 0x2222, 2)
        persist(m, head)  # only the later store persisted
        result = check_prefix_consistency(m, [node, head])
        assert not result
        assert "persist order violated" in result.violations[0]

    def test_per_core_independence(self):
        """Core 1's completed stores do not excuse core 0's hole."""
        m = media()
        c0_a, c0_b = rec(0, BASE, 1, 1), rec(0, BASE + 64, 2, 3)
        c1_a = rec(1, BASE + 128, 3, 2)
        persist(m, c0_b)
        persist(m, c1_a)
        assert not check_prefix_consistency(m, [c0_a, c1_a, c0_b])
        # But core 1 alone is fine.
        assert check_prefix_consistency(m, [c1_a])

    def test_multiwritten_bytes_are_skipped(self):
        """Bytes written twice are indeterminate and must not flag."""
        m = media()
        records = [rec(0, BASE, 1, 1), rec(0, BASE, 2, 2), rec(0, BASE + 64, 3, 3)]
        persist(m, records[1])
        persist(m, records[2])
        assert check_prefix_consistency(m, records)


class TestEpochConsistency:
    def test_exact_boundary_matches(self):
        m = media()
        e0 = [rec(0, BASE, 1, 1)]
        e1 = [rec(0, BASE + 64, 2, 2)]
        persist(m, e0[0])
        assert check_epoch_consistency(m, [e0, e1])

    def test_partial_current_epoch_ok(self):
        m = media()
        e0 = [rec(0, BASE, 1, 1)]
        e1 = [rec(0, BASE + 64, 2, 2), rec(0, BASE + 128, 3, 3)]
        persist(m, e0[0])
        persist(m, e1[1])  # only part of epoch 1
        assert check_epoch_consistency(m, [e0, e1])

    def test_epoch_skip_fails(self):
        """Epoch 2 durable while epoch 0 missing: ordering violated."""
        m = media()
        e0 = [rec(0, BASE, 1, 1)]
        e1 = [rec(0, BASE + 64, 2, 2)]
        e2 = [rec(0, BASE + 128, 3, 3)]
        persist(m, e2[0])  # only the last epoch
        assert not check_epoch_consistency(m, [e0, e1, e2])

    def test_all_epochs_durable(self):
        m = media()
        epochs = [[rec(0, BASE + i * 64, i + 1, i)] for i in range(3)]
        for e in epochs:
            persist(m, e[0])
        assert check_epoch_consistency(m, epochs)


class TestConsistencyResult:
    def test_truthiness(self):
        assert ConsistencyResult.ok()
        assert not ConsistencyResult.fail("boom")

    def test_violations_recorded(self):
        r = ConsistencyResult.fail("a", "b")
        assert r.violations == ["a", "b"]
