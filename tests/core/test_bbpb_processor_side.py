"""Unit tests for the processor-side bbPB (repro.core.bbpb.ProcessorSideBBPB).

The organisational differences vs the memory-side buffer (Section III-B):
ordered per-store records, coalescing only between consecutive same-block
entries, strictly in-order draining.
"""

import pytest

from repro.core.bbpb import ProcessorSideBBPB
from repro.mem.block import BlockData
from repro.sim.config import BBBConfig

from tests.core.test_bbpb_memory_side import DrainSink, data


def make(entries=4, threshold=0.75, latency=50):
    sink = DrainSink(latency)
    cfg = BBBConfig(entries=entries, drain_threshold=threshold, memory_side=False)
    return ProcessorSideBBPB(cfg, core_id=0, drain=sink), sink


class TestOrderedRecords:
    def test_records_kept_in_program_order(self):
        buf, _ = make(entries=8)
        buf.put(0x1000, data(1), 0)
        buf.put(0x1080, data(2), 0)
        buf.put(0x1040, data(3), 0)
        assert buf.resident_blocks() == [0x1000, 0x1080, 0x1040]

    def test_consecutive_same_block_coalesces(self):
        buf, _ = make(entries=8)
        buf.put(0x1000, data(1), 0)
        stall, allocated = buf.put(0x1000, data(2), 1)
        assert not allocated
        assert buf.coalesces == 1
        assert len(buf) == 1

    def test_non_consecutive_same_block_does_not_coalesce(self):
        """The key difference from the memory-side organisation: an
        intervening store to another block blocks coalescing (ordering
        would be violated)."""
        buf, _ = make(entries=8)
        buf.put(0x1000, data(1), 0)
        buf.put(0x1040, data(2), 0)
        stall, allocated = buf.put(0x1000, data(3), 0)
        assert allocated
        assert len(buf) == 3
        assert buf.coalesces == 0


class TestInOrderDraining:
    def test_threshold_drains_oldest_prefix(self):
        buf, sink = make(entries=4, threshold=0.75)
        for i in range(3):
            buf.put(0x1000 + i * 64, data(i), 0)
        assert [c[0] for c in sink.calls] == [0x1000]

    def test_drain_completions_serialise(self):
        buf, sink = make(entries=2, threshold=0.5, latency=50)
        buf.put(0x1000, data(1), 0)
        buf.put(0x1040, data(2), 0)
        buf.put(0x1080, data(3), 0)  # forces waiting on head drains
        dones = [c[3] for c in sink.calls]
        assert dones == sorted(dones)

    def test_reap_only_frees_completed_head_run(self):
        buf, sink = make(entries=4, threshold=0.5, latency=50)
        buf.put(0x1000, data(1), 0)
        buf.put(0x1040, data(2), 0)  # head starts draining
        buf.reap(10)   # nothing complete yet
        assert len(buf) == 2
        buf.reap(10_000)
        assert len(buf) < 2


class TestFullBuffer:
    def test_rejection_and_stall_when_full(self):
        buf, _ = make(entries=2, threshold=1.0, latency=50)
        buf.put(0x1000, data(1), 0)
        buf.put(0x1040, data(2), 0)
        stall, _ = buf.put(0x1080, data(3), 0)
        assert buf.rejections >= 1
        assert stall > 0


class TestCoherenceActions:
    def test_remove_drains_prefix_through_block(self):
        """Ordering forbids plucking a middle record: everything up to and
        including the block drains (part of why the paper rejects the
        processor-side design)."""
        buf, sink = make(entries=8)
        buf.put(0x1000, data(1), 0)
        buf.put(0x1040, data(2), 0)
        buf.put(0x1080, data(3), 0)
        removed = buf.remove(0x1040)
        assert removed.read_word(0) == 2
        assert [c[0] for c in sink.calls] == [0x1000, 0x1040]
        assert buf.resident_blocks() == [0x1080]

    def test_remove_absent_is_noop(self):
        buf, sink = make()
        assert buf.remove(0x1000) is None
        assert not sink.calls

    def test_force_drain_through_block(self):
        buf, sink = make(entries=8)
        buf.put(0x1000, data(1), 0)
        buf.put(0x1040, data(2), 0)
        done = buf.force_drain(0x1040, 100)
        assert done >= 100
        assert [c[0] for c in sink.calls] == [0x1000, 0x1040]


class TestCrash:
    def test_crash_drain_in_program_order(self):
        buf, _ = make(entries=8)
        buf.put(0x1000, data(1), 0)
        buf.put(0x1040, data(2), 0)
        drained = buf.crash_drain()
        assert [a for a, _ in drained] == [0x1000, 0x1040]
        assert len(buf) == 0

    def test_drain_all(self):
        buf, sink = make(entries=8)
        buf.put(0x1000, data(1), 0)
        buf.put(0x1040, data(2), 0)
        buf.drain_all(0)
        assert len(buf) == 0
        assert len(sink.calls) == 2


class TestWriteAmplification:
    def test_scattered_stores_drain_once_each(self):
        """N stores to the same block separated by other blocks produce N
        drains processor-side — the write-amplification of Section V-C."""
        buf, sink = make(entries=2, threshold=1.0, latency=1)
        for i in range(6):
            block = 0x1000 if i % 2 == 0 else 0x2000
            buf.put(block, data(i), i * 100)
        buf.drain_all(10_000)
        assert len(sink.calls) == 6  # zero coalescing
