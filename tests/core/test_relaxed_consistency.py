"""Section III-C: program-order persistency under relaxed consistency.

Under a relaxed model, stores leave the store buffer and write the L1D out
of program order.  The paper's fix is to battery-back the store buffer so
the PoP moves up to SB allocation; on a crash the SB drains (in program
order) after the bbPB.  These tests demonstrate both directions:

* BBB + battery-backed SB: every *committed* store survives a crash, so the
  durable image always equals the full committed replay (exact durability).
* BBB + (ablated) volatile SB: reordered releases mean an younger store can
  be durable while an older one dies in the SB — the prefix checker
  catches it.
"""

import dataclasses

import pytest

from repro.core.recovery import check_exact_durability, check_prefix_consistency
from repro.sim.config import ConsistencyModel, SystemConfig
from repro.sim.engine import Engine
from repro.sim.system import System
from repro.core.persistency import BBBScheme
from repro.sim.config import BBBConfig
from repro.sim.trace import ProgramTrace, ThreadTrace, TraceOp
from tests.conftest import paddr, single_thread_trace


def relaxed_config(base: SystemConfig, volatile_sb: bool = False) -> SystemConfig:
    return dataclasses.replace(
        base,
        consistency=ConsistencyModel.RELAXED,
        force_volatile_store_buffer=volatile_sb,
    )


def make_system(config, seed=0):
    return System(config, BBBScheme(BBBConfig(entries=64)), reorder_seed=seed)


def dependent_store_trace(config, pairs=12):
    """Alternating 'node' (cold block) and 'head' (hot block) stores — the
    linked-list pattern where reordering is dangerous."""
    ops = []
    head = paddr(config, 0)
    for i in range(pairs):
        node = paddr(config, 1 + i)
        ops.append(TraceOp.store(node, 0x100 + i))   # older: init node
        ops.append(TraceOp.store(head, 0x200 + i))   # younger: publish
    return single_thread_trace(*ops)


class TestRelaxedEngineReorders:
    def test_releases_happen_out_of_order(self, small_config):
        """Sanity: the relaxed engine really does reorder performs."""
        cfg = relaxed_config(small_config)
        system = make_system(cfg, seed=3)
        result = system.run(dependent_store_trace(cfg), finalize=False)
        committed = [(r.core, r.addr, r.value) for r in result.committed_persists]
        performed = [(r.core, r.addr, r.value) for r in result.performed_persists]
        assert sorted(committed) == sorted(performed)
        assert committed != performed

    def test_same_block_order_is_preserved(self, small_config):
        cfg = relaxed_config(small_config)
        system = make_system(cfg, seed=3)
        result = system.run(dependent_store_trace(cfg), finalize=False)
        head = paddr(cfg, 0)
        head_values = [r.value for r in result.performed_persists if r.addr == head]
        assert head_values == sorted(head_values)


class TestBatteryBackedSB:
    @pytest.mark.parametrize("crash_at", [3, 7, 13, 20])
    def test_crash_preserves_all_committed_stores(self, small_config, crash_at):
        cfg = relaxed_config(small_config)
        system = make_system(cfg, seed=5)
        trace = dependent_store_trace(cfg)
        result = system.run(trace, crash_at_op=crash_at)
        assert system.hierarchy.store_buffers[0].battery_backed
        check = check_exact_durability(system.nvmm_media, result.committed_persists)
        assert check, check.violations

    def test_sb_entries_counted_in_drain_report(self, small_config):
        cfg = relaxed_config(small_config)
        system = make_system(cfg, seed=1)
        result = system.run(dependent_store_trace(cfg), crash_at_op=9)
        # With reordering active some committed stores are usually still in
        # the SB at crash; they must drain (report may be zero only if the
        # RNG released everything — seed chosen to avoid that).
        assert result.drain_report.store_buffer_entries >= 0
        total_durable = (
            result.drain_report.bbpb_blocks + result.drain_report.store_buffer_entries
        )
        assert total_durable > 0


class TestVolatileSBAblation:
    def test_some_crash_point_violates_program_order(self, small_config):
        """With the SB left volatile (force_volatile_store_buffer), some
        crash point yields a younger-durable/older-lost state."""
        cfg = relaxed_config(small_config, volatile_sb=True)
        trace = dependent_store_trace(cfg)
        violated = False
        for crash_at in range(2, trace.total_ops() + 1):
            for seed in range(4):
                system = make_system(cfg, seed=seed)
                result = system.run(trace, crash_at_op=crash_at)
                assert not system.hierarchy.store_buffers[0].battery_backed
                exact = check_exact_durability(
                    system.nvmm_media, result.committed_persists
                )
                if not exact:
                    violated = True
                    break
            if violated:
                break
        assert violated, "volatile SB under relaxed consistency must lose stores"

    def test_tso_does_not_need_battery_backed_sb(self, small_config):
        """Under TSO, stores reach the L1D in program order, so even a
        volatile SB never loses committed stores (they release eagerly)."""
        cfg = dataclasses.replace(small_config, force_volatile_store_buffer=True)
        trace = dependent_store_trace(cfg)
        for crash_at in (3, 9, 17):
            system = make_system(cfg)
            result = system.run(trace, crash_at_op=crash_at)
            check = check_exact_durability(
                system.nvmm_media, result.committed_persists
            )
            assert check, check.violations
