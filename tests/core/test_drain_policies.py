"""Tests for drain policies, including the future-work
LEAST_RECENTLY_WRITTEN predictor (repro.core.drain / repro.core.bbpb)."""

import pytest

from repro.core.drain import POLICY_DESCRIPTIONS, config_for_policy, threshold_sweep_configs
from repro.core.bbpb import MemorySideBBPB
from repro.mem.block import BlockData
from repro.sim.config import BBBConfig, DrainPolicy

from tests.core.test_bbpb_memory_side import DrainSink, data


def make(policy, entries=4, threshold=0.75, latency=10):
    sink = DrainSink(latency)
    cfg = BBBConfig(entries=entries, drain_threshold=threshold, drain_policy=policy)
    return MemorySideBBPB(cfg, core_id=0, drain=sink), sink


class TestPolicyMetadata:
    def test_every_policy_documented(self):
        assert set(POLICY_DESCRIPTIONS) == set(DrainPolicy)

    def test_config_for_policy(self):
        cfg = config_for_policy(DrainPolicy.EAGER, entries=8)
        assert cfg.drain_policy is DrainPolicy.EAGER
        assert cfg.entries == 8
        assert cfg.memory_side

    def test_threshold_sweep_configs(self):
        sweeps = threshold_sweep_configs([0.25, 0.75])
        assert sweeps[0.25].drain_threshold == 0.25
        assert sweeps[0.75].drain_threshold == 0.75


class TestLeastRecentlyWritten:
    def test_drains_idle_entry_not_hot_one(self):
        """Three entries; the oldest-allocated one is also the hottest
        (coalesced last).  FCFS would evict it; LRW keeps it and drains
        the entry idle the longest."""
        buf, sink = make(DrainPolicy.LEAST_RECENTLY_WRITTEN, entries=4,
                         threshold=0.75)
        buf.put(0x1000, data(1), now=0)    # hot block, allocated first
        buf.put(0x1040, data(2), now=10)   # idle after this
        buf.put(0x1000, data(3), now=20)   # re-write the hot block
        buf.put(0x1080, data(4), now=30)   # trips the threshold (3 entries)
        assert sink.calls[0][0] == 0x1040  # idle victim, not 0x1000

    def test_fcfs_would_have_drained_the_hot_block(self):
        buf, sink = make(DrainPolicy.FCFS_THRESHOLD, entries=4, threshold=0.75)
        buf.put(0x1000, data(1), now=0)
        buf.put(0x1040, data(2), now=10)
        buf.put(0x1000, data(3), now=20)
        buf.put(0x1080, data(4), now=30)
        assert sink.calls[0][0] == 0x1000  # allocation order wins

    def test_lrw_reduces_drains_on_hot_cold_mix(self):
        """A stream with one hot block and a cold stream: LRW drains the
        hot block less often than FCFS (more coalescing)."""

        def run(policy):
            buf, sink = make(policy, entries=4, threshold=0.75, latency=1)
            now = 0
            for i in range(40):
                buf.put(0x9000, data(i), now)            # hot every op
                buf.put(0x1000 + i * 64, data(i), now + 1)  # cold stream
                now += 100
            buf.drain_all(now + 1000)
            return sum(1 for c in sink.calls if c[0] == 0x9000)

        hot_drains_lrw = run(DrainPolicy.LEAST_RECENTLY_WRITTEN)
        hot_drains_fcfs = run(DrainPolicy.FCFS_THRESHOLD)
        assert hot_drains_lrw < hot_drains_fcfs

    def test_lrw_never_loses_data(self):
        buf, sink = make(DrainPolicy.LEAST_RECENTLY_WRITTEN, entries=2,
                         threshold=1.0, latency=5)
        values = {}
        now = 0
        for i in range(20):
            addr = 0x1000 + (i % 5) * 64
            buf.put(addr, data(i), now)
            values[addr] = i
            now += 50
        buf.drain_all(now + 1000)
        last = {}
        for addr, d, _, _ in sink.calls:
            last[addr] = d.read_word(0)
        assert last == values


class TestCoalesceTracking:
    def test_last_write_updated_on_coalesce(self):
        buf, _ = make(DrainPolicy.LEAST_RECENTLY_WRITTEN, entries=8)
        buf.put(0x1000, data(1), now=0)
        buf.put(0x1000, data(2), now=500)
        assert buf.entry(0x1000).last_write == 500
        assert buf.entry(0x1000).alloc_time == 0
