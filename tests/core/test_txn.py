"""Tests for the failure-atomic transaction layer (repro.core.txn).

The bank-transfer scenario: N accounts, each transaction moves money
between two of them.  The invariant — total balance is conserved — holds
at every crash point *after recovery* under BBB with the plain (no
flush/fence) code, and is violated without persist ordering.
"""

import random

import pytest

from repro.core.txn import RecoveryResult, TransactionContext, recover
from repro.api import build_system
from repro.sim.trace import ProgramTrace, ThreadTrace, TraceOp
from repro.workloads.alloc import PersistentHeap
from tests.conftest import conflict_addresses


ACCOUNTS = 6
INITIAL = 100


def build_bank(config, transfers=10, barriers=False, seed=3):
    """Returns (ctx, accounts, trace) for a bank-transfer program."""
    pheap = PersistentHeap(config.mem)
    ctx = TransactionContext(pheap, barriers=barriers)
    accounts = [ctx.alloc_word(INITIAL) for _ in range(ACCOUNTS)]
    rng = random.Random(seed)
    ops = []
    for _ in range(transfers):
        src, dst = rng.sample(range(ACCOUNTS), 2)
        amount = rng.randrange(1, 30)
        ops.extend(
            ctx.transaction(
                {
                    accounts[src]: ctx.shadow[accounts[src]] - amount,
                    accounts[dst]: ctx.shadow[accounts[dst]] + amount,
                }
            )
        )
    return ctx, accounts, ProgramTrace([ThreadTrace(ops)])


def recovered_total(system, ctx, accounts):
    result = recover(system.nvmm_media, ctx.layout, accounts)
    return sum(result.state.values()), result


class TestProtocolBuilding:
    def test_transaction_emits_undo_then_data(self, small_config):
        ctx, accounts, trace = build_bank(small_config, transfers=1)
        tags = [op.tag for op in trace.threads[0] if op.tag]
        first_data = tags.index("txn-data")
        assert "undo-addr" in tags[:first_data]
        assert "log-count" in tags[:first_data]
        assert tags[-1] == "commit"

    def test_barriers_variant_adds_flush_fence(self, small_config):
        from repro.sim.trace import OpKind

        _, _, plain = build_bank(small_config, transfers=1, barriers=False)
        _, _, fenced = build_bank(small_config, transfers=1, barriers=True)
        assert plain.threads[0].count(OpKind.FENCE) == 0
        assert fenced.threads[0].count(OpKind.FENCE) > 4

    def test_misuse_raises(self, small_config):
        pheap = PersistentHeap(small_config.mem)
        ctx = TransactionContext(pheap)
        addr = ctx.alloc_word(1)
        with pytest.raises(RuntimeError):
            ctx.txn_store(addr, 2)          # no begin
        ctx.begin()
        with pytest.raises(RuntimeError):
            ctx.begin()                     # nested
        with pytest.raises(KeyError):
            ctx.txn_store(0xDEAD000, 1)     # unmanaged address
        ctx.commit()
        with pytest.raises(RuntimeError):
            ctx.commit()                    # double commit


class TestAtomicityUnderBBB:
    def test_complete_run_balances(self, small_config):
        ctx, accounts, trace = build_bank(small_config)
        system = build_system("bbb", config=small_config)
        for addr, value in ctx.initial_words().items():
            from repro.mem.block import BlockData, block_address, block_offset
            d = BlockData()
            d.write_word(block_offset(addr, 64), value, 8)
            system.nvmm_media.write_block(block_address(addr, 64), d)
        system.run(trace)
        total, _ = recovered_total(system, ctx, accounts)
        assert total == ACCOUNTS * INITIAL

    @pytest.mark.parametrize("scheme", ["bbb", "eadr"])
    def test_every_crash_point_recovers_atomically(self, small_config, scheme):
        """The headline: plain undo-log code, zero fences, atomic at every
        crash point under a closed PoV/PoP gap."""
        ctx, accounts, trace = build_bank(small_config, transfers=6)
        seeds = ctx.initial_words()
        for crash_at in range(1, trace.total_ops() + 1, 3):
            system = build_system(scheme, config=small_config)
            _seed(system, seeds)
            system.run(trace, crash_at_op=crash_at)
            total, result = recovered_total(system, ctx, accounts)
            assert total == ACCOUNTS * INITIAL, (crash_at, result.state)

    def test_recovery_rolls_back_in_flight_txn(self, small_config):
        ctx, accounts, trace = build_bank(small_config, transfers=2)
        seeds = ctx.initial_words()
        # Crash right after the first data store of the second txn: the
        # log holds one undo record that recovery must apply.
        ops = list(trace.threads[0])
        data_indices = [i for i, op in enumerate(ops) if op.tag == "txn-data"]
        crash_at = data_indices[2] + 1  # first data store of txn 2
        system = build_system("bbb", config=small_config)
        _seed(system, seeds)
        system.run(ProgramTrace([ThreadTrace(ops)]), crash_at_op=crash_at)
        total, result = recovered_total(system, ctx, accounts)
        assert result.rolled_back >= 1
        assert total == ACCOUNTS * INITIAL


class TestTornWithoutOrdering:
    def test_replacement_order_persistence_tears_transactions(self, small_config):
        """Volatile caches + eviction pressure on the data block *between
        the debit and the credit*: the debit persists (evicted) while the
        undo log stays cached — recovery cannot roll back and money
        vanishes."""
        pheap = PersistentHeap(small_config.mem)
        ctx = TransactionContext(pheap)
        accounts = [ctx.alloc_word(INITIAL) for _ in range(ACCOUNTS)]
        seeds = ctx.initial_words()
        ops = []
        ops.extend(ctx.begin())
        ops.extend(ctx.txn_store(accounts[0], INITIAL - 25))  # debit
        # Mid-transaction eviction of the account block.
        for addr in conflict_addresses(small_config, accounts[0],
                                       small_config.llc.assoc):
            ops.append(TraceOp.load(addr))
        ops.extend(ctx.txn_store(accounts[1], INITIAL + 25))  # credit
        ops.extend(ctx.commit())
        torn = False
        for crash_at in range(1, len(ops) + 1):
            system = build_system("none", config=small_config)
            _seed(system, seeds)
            system.run(ProgramTrace([ThreadTrace(ops)]), crash_at_op=crash_at)
            total, _ = recovered_total(system, ctx, accounts)
            if total != ACCOUNTS * INITIAL:
                torn = True
                break
        assert torn, "expected an unordered persist to tear a transaction"

    def test_same_mid_txn_pressure_is_safe_under_bbb(self, small_config):
        """Identical program, BBB: every crash point conserves the total."""
        pheap = PersistentHeap(small_config.mem)
        ctx = TransactionContext(pheap)
        accounts = [ctx.alloc_word(INITIAL) for _ in range(ACCOUNTS)]
        seeds = ctx.initial_words()
        ops = []
        ops.extend(ctx.begin())
        ops.extend(ctx.txn_store(accounts[0], INITIAL - 25))
        for addr in conflict_addresses(small_config, accounts[0],
                                       small_config.llc.assoc):
            ops.append(TraceOp.load(addr))
        ops.extend(ctx.txn_store(accounts[1], INITIAL + 25))
        ops.extend(ctx.commit())
        for crash_at in range(1, len(ops) + 1):
            system = build_system("bbb", config=small_config)
            _seed(system, seeds)
            system.run(ProgramTrace([ThreadTrace(ops)]), crash_at_op=crash_at)
            total, result = recovered_total(system, ctx, accounts)
            assert total == ACCOUNTS * INITIAL, (crash_at, result.state)

    def test_fig3_style_barriers_fix_adr_hardware(self, small_config):
        """The same ADR-only system is atomic once the programmer inserts
        the flush+fence pairs (barriers=True)."""
        ctx, accounts, trace = build_bank(small_config, transfers=4, barriers=True)
        seeds = ctx.initial_words()
        for crash_at in range(1, trace.total_ops() + 1, 5):
            system = build_system("none", config=small_config)
            _seed(system, seeds)
            system.run(trace, crash_at_op=crash_at)
            total, result = recovered_total(system, ctx, accounts)
            assert total == ACCOUNTS * INITIAL, (crash_at, result.state)


def _seed(system, seeds):
    from repro.mem.block import BlockData, block_address, block_offset

    by_block = {}
    for addr, value in seeds.items():
        baddr = block_address(addr, 64)
        by_block.setdefault(baddr, BlockData()).write_word(
            block_offset(addr, 64), value, 8
        )
    for baddr, data in by_block.items():
        system.nvmm_media.write_block(baddr, data)
