"""Integration tests: buffered epoch persistency over epoch-annotated
programs (the related-work model BBB is contrasted with).

BEP guarantees ordering *across* epochs only; the recovered image must sit
between two consecutive epoch boundaries (check_epoch_consistency).  The
tests build epoch-annotated programs, crash them everywhere, and validate
that contract — and that the epoch barrier is where BEP pays its stalls.
"""

import pytest

from repro.core.recovery import check_epoch_consistency
from repro.api import build_system
from repro.sim.trace import OpKind, ProgramTrace, ThreadTrace, TraceOp
from tests.conftest import paddr, single_thread_trace


def epoch_program(config, epochs=6, stores_per_epoch=4):
    """Single-thread program: groups of stores separated by epoch ops.
    Returns (trace, groups) where groups[i] is the i-th epoch's stores."""
    ops = []
    groups = []
    addr_index = 0
    for e in range(epochs):
        group = []
        for s in range(stores_per_epoch):
            addr = paddr(config, addr_index)
            addr_index += 1
            value = (e << 16) | (s + 1)
            ops.append(TraceOp.store(addr, value))
            group.append((addr, value))
        ops.append(TraceOp.epoch())
        groups.append(group)
    return single_thread_trace(*ops), groups


def to_persist_records(groups):
    from repro.sim.engine import PersistRecord

    epochs = []
    seq = 0
    for group in groups:
        records = []
        for addr, value in group:
            seq += 1
            records.append(PersistRecord(0, addr, 8, value, seq))
        epochs.append(records)
    return epochs


class TestEpochConsistencyUnderBEP:
    def test_crash_sweep_is_epoch_consistent(self, small_config):
        trace, groups = epoch_program(small_config)
        epochs = to_persist_records(groups)
        for crash_at in range(1, trace.total_ops() + 1):
            system = build_system("bep", config=small_config, entries=8)
            system.run(trace, crash_at_op=crash_at)
            check = check_epoch_consistency(system.nvmm_media, epochs)
            assert check, (crash_at, check.violations)

    def test_full_run_persists_every_epoch(self, small_config):
        trace, groups = epoch_program(small_config)
        system = build_system("bep", config=small_config)
        system.run(trace)
        for group in groups:
            for addr, value in group:
                assert system.nvmm_media.read_word(addr, 8) == value

    def test_closed_epochs_are_durable_after_boundary(self, small_config):
        """Crashing right after an epoch boundary: the closed epoch is
        fully durable (the boundary stalls until it drains)."""
        trace, groups = epoch_program(small_config, epochs=2, stores_per_epoch=3)
        # Crash immediately after the first EPOCH op (op index 4 -> 1-based).
        system = build_system("bep", config=small_config)
        system.run(trace, crash_at_op=4)
        for addr, value in groups[0]:
            assert system.nvmm_media.read_word(addr, 8) == value
        # Nothing from epoch 1 can be durable yet.
        for addr, value in groups[1]:
            assert system.nvmm_media.read_word(addr, 8) == 0


class TestEpochBarrierCost:
    def test_barriers_stall_when_prior_epoch_undrained(self, small_config):
        trace, _ = epoch_program(small_config, epochs=8, stores_per_epoch=6)
        system = build_system("bep", config=small_config, entries=64)
        result = system.run(trace, finalize=False)
        assert result.stats.epoch_barriers == 8
        assert sum(c.stall_cycles_epoch for c in result.stats.core) > 0

    def test_bbb_runs_the_same_program_without_epoch_stalls(self, small_config):
        """Under BBB the epoch ops are ordering no-ops: strict persistency
        subsumes them, with zero barrier stalls."""
        trace, groups = epoch_program(small_config, epochs=8, stores_per_epoch=6)
        system = build_system("bbb", config=small_config)
        result = system.run(trace, finalize=False)
        assert sum(c.stall_cycles_epoch for c in result.stats.core) == 0
        # And the durable state is even stronger than epoch consistency.
        epochs = to_persist_records(groups)
        system.scheme.finalize(10**9)
        assert check_epoch_consistency(system.nvmm_media, epochs)

    def test_bep_faster_than_strict_but_weaker(self, small_config):
        """The classic trade-off: BEP buys performance over per-store
        strictness by weakening the guarantee to epoch granularity."""
        from repro.api import build_system

        trace, _ = epoch_program(small_config, epochs=10, stores_per_epoch=8)
        t_bep = build_system("bep", config=small_config).run(trace, finalize=False).execution_cycles
        t_strict = build_system("pmem", config=small_config).run(trace, finalize=False).execution_cycles
        assert t_bep < t_strict
