"""Unit tests for the persistency schemes (repro.core.persistency)."""

import pytest

from repro.core.persistency import table1_rows
from repro.sim.config import ConsistencyModel, SystemConfig
from repro.api import build_system
from repro.sim.trace import ProgramTrace, ThreadTrace, TraceOp
from tests.conftest import paddr, single_thread_trace


def store_trace(config, n, stride_blocks=1):
    ops = [
        TraceOp.store(paddr(config, i * stride_blocks), i + 1) for i in range(n)
    ]
    return single_thread_trace(*ops)


class TestEADR:
    def test_no_stalls_no_extra_writes_during_run(self, small_config):
        system = build_system("eadr", config=small_config)
        result = system.run(store_trace(small_config, 10), finalize=False)
        assert result.stats.total_bbpb_stalls == 0
        assert result.stats.nvmm_writes == 0  # nothing evicted yet

    def test_crash_drain_persists_all_dirty_blocks(self, small_config):
        system = build_system("eadr", config=small_config)
        result = system.run(store_trace(small_config, 10), crash_at_op=10)
        assert result.crashed
        assert result.drain_report.cache_blocks >= 10
        for i in range(10):
            assert system.nvmm_media.read_word(paddr(small_config, i), 8) == i + 1

    def test_crash_drain_prefers_l1_copy_over_stale_llc(self, small_config):
        system = build_system("eadr", config=small_config)
        h = system.hierarchy
        x = paddr(small_config, 0)
        h.store(0, x, 8, 1, 0)
        h.load(1, x, 8, 10)        # LLC gets value 1, both S
        h.store(0, x, 8, 2, 20)    # core 0 M again with newer value
        system.scheme.crash_drain(100)
        assert system.nvmm_media.read_word(x, 8) == 2

    def test_crash_drain_ignores_dram_blocks(self, small_config):
        from tests.conftest import daddr

        system = build_system("eadr", config=small_config)
        h = system.hierarchy
        h.store(0, daddr(small_config, 0), 8, 7, 0)
        report = system.scheme.crash_drain(10)
        assert report.cache_blocks == 0


class TestStrictPMEM:
    def test_every_persisting_store_flushes_and_fences(self, small_config):
        system = build_system("pmem", config=small_config)
        result = system.run(store_trace(small_config, 8), finalize=False)
        assert result.stats.flushes == 8
        assert result.stats.fences == 8
        assert result.stats.nvmm_writes == 8

    def test_stores_stall_for_wpq_round_trip(self, small_config):
        slow = build_system("pmem", config=small_config)
        fast = build_system("eadr", config=small_config)
        r_slow = slow.run(store_trace(small_config, 20), finalize=False)
        r_fast = fast.run(store_trace(small_config, 20), finalize=False)
        assert r_slow.execution_cycles > r_fast.execution_cycles * 1.5

    def test_durable_immediately_after_each_store(self, small_config):
        system = build_system("pmem", config=small_config)
        system.run(store_trace(small_config, 5), crash_at_op=5)
        for i in range(5):
            assert system.nvmm_media.read_word(paddr(small_config, i), 8) == i + 1

    def test_non_persistent_stores_not_flushed(self, small_config):
        from tests.conftest import daddr

        system = build_system("pmem", config=small_config)
        trace = single_thread_trace(TraceOp.store(daddr(small_config, 0), 1))
        result = system.run(trace, finalize=False)
        assert result.stats.flushes == 0


class TestBBBFactories:
    def test_memory_side_default(self, small_config):
        system = build_system("bbb", config=small_config, entries=16)
        assert system.scheme.bbb_config.memory_side
        assert system.scheme.bbb_config.entries == 16

    def test_processor_side_factory(self, small_config):
        system = build_system("bbb-proc", config=small_config, entries=16)
        assert not system.scheme.bbb_config.memory_side

    def test_store_allocates_bbpb_entry(self, small_config):
        system = build_system("bbb", config=small_config)
        result = system.run(store_trace(small_config, 3), finalize=False)
        assert result.stats.bbpb_allocations == 3

    def test_same_block_stores_coalesce(self, small_config):
        system = build_system("bbb", config=small_config)
        ops = [TraceOp.store(paddr(small_config, 0, off), off) for off in (0, 8, 16)]
        result = system.run(single_thread_trace(*ops), finalize=False)
        assert result.stats.bbpb_allocations == 1
        assert result.stats.bbpb_coalesces == 2

    def test_crash_drains_bbpb_to_media(self, small_config):
        system = build_system("bbb", config=small_config, entries=64)
        result = system.run(store_trace(small_config, 10), crash_at_op=10)
        assert result.drain_report.bbpb_blocks == 10
        for i in range(10):
            assert system.nvmm_media.read_word(paddr(small_config, i), 8) == i + 1

    def test_finalize_settles_all_buffers(self, small_config):
        system = build_system("bbb", config=small_config, entries=64)
        system.run(store_trace(small_config, 10), finalize=True)
        assert all(len(b) == 0 for b in system.scheme.buffers)
        for i in range(10):
            assert system.nvmm_media.read_word(paddr(small_config, i), 8) == i + 1

    def test_processor_side_writes_exceed_memory_side(self, small_config):
        """Scattered repeat stores: processor-side cannot coalesce."""
        ops = []
        for i in range(30):
            block = i % 3  # revisit 3 blocks repeatedly
            ops.append(TraceOp.store(paddr(small_config, block), i))
        trace = single_thread_trace(*ops)
        mem_side = build_system("bbb", config=small_config, entries=8)
        proc_side = build_system("bbb-proc", config=small_config, entries=8)
        r_mem = mem_side.run(trace)
        r_proc = proc_side.run(trace)
        assert r_proc.stats.nvmm_writes > 2 * r_mem.stats.nvmm_writes


class TestBEP:
    def test_epoch_barriers_counted(self, small_config):
        system = build_system("bep", config=small_config)
        ops = [
            TraceOp.store(paddr(small_config, 0), 1),
            TraceOp.epoch(),
            TraceOp.store(paddr(small_config, 1), 2),
            TraceOp.epoch(),
        ]
        result = system.run(single_thread_trace(*ops), finalize=False)
        assert result.stats.epoch_barriers == 2

    def test_epoch_boundary_drains_prior_epoch(self, small_config):
        system = build_system("bep", config=small_config)
        ops = [
            TraceOp.store(paddr(small_config, 0), 1),
            TraceOp.epoch(),
        ]
        system.run(single_thread_trace(*ops), finalize=False)
        assert system.nvmm_media.read_word(paddr(small_config, 0), 8) == 1

    def test_crash_loses_volatile_buffer(self, small_config):
        system = build_system("bep", config=small_config)
        ops = [TraceOp.store(paddr(small_config, 0), 1)]
        result = system.run(single_thread_trace(*ops), crash_at_op=1)
        assert result.drain_report.total_units == 0
        assert system.nvmm_media.read_word(paddr(small_config, 0), 8) == 0

    def test_within_epoch_coalescing(self, small_config):
        system = build_system("bep", config=small_config)
        ops = [
            TraceOp.store(paddr(small_config, 0, 0), 1),
            TraceOp.store(paddr(small_config, 0, 8), 2),
            TraceOp.epoch(),
        ]
        result = system.run(single_thread_trace(*ops), finalize=False)
        assert result.stats.nvmm_writes == 1  # one block, coalesced


class TestNoPersistency:
    def test_nothing_durable_without_evictions(self, small_config):
        system = build_system("none", config=small_config)
        system.run(store_trace(small_config, 5), finalize=False)
        assert system.nvmm_media.total_writes == 0

    def test_crash_drains_nothing(self, small_config):
        system = build_system("none", config=small_config)
        result = system.run(store_trace(small_config, 5), crash_at_op=5)
        assert result.drain_report.total_units == 0


class TestTraits:
    def test_table1_has_four_schemes(self):
        rows = table1_rows()
        assert [r.name for r in rows] == ["PMEM", "BSP", "eADR", "BBB (memory-side)"]

    def test_table1_battery_column(self):
        by_name = {r.name: r for r in table1_rows()}
        assert by_name["PMEM"].battery == "None"
        assert by_name["eADR"].battery == "Large"
        assert by_name["BBB (memory-side)"].battery == "Small"

    def test_table1_pop_locations(self):
        by_name = {r.name: r for r in table1_rows()}
        assert by_name["PMEM"].pop_location == "WPQ/mem"
        assert by_name["eADR"].pop_location == "L1D"
        assert by_name["BBB (memory-side)"].pop_location == "bbPB/L1D"

    def test_only_pmem_needs_persist_instructions(self):
        rows = table1_rows()
        for row in rows:
            if row.name == "PMEM":
                assert "clwb" in row.persist_instructions
            else:
                assert row.persist_instructions == "None"
