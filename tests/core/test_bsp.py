"""Tests for the Bulk Strict Persistency baseline (repro.core.bsp).

BSP hides the PoV/PoP gap instead of closing it: buffered stores persist
lazily, but a remote request for an unpersisted block forces the holder to
persist it (and all older stores) before responding.
"""

import pytest

from repro.core.bsp import BSP
from repro.core.recovery import check_exact_durability, check_prefix_consistency
from repro.api import build_system
from repro.sim.trace import ProgramTrace, ThreadTrace, TraceOp
from tests.conftest import paddr, single_thread_trace


def store_trace(config, n):
    return single_thread_trace(
        *[TraceOp.store(paddr(config, i), i + 1) for i in range(n)]
    )


class TestBuffering:
    def test_stores_buffer_without_immediate_persist(self, small_config):
        system = build_system("bsp", config=small_config)
        system.run(store_trace(small_config, 3), finalize=False)
        # Below the drain threshold nothing has persisted yet.
        assert system.nvmm_media.read_word(paddr(small_config, 0), 8) == 0
        assert len(system.scheme.buffers[0]) == 3

    def test_finalize_persists_everything(self, small_config):
        system = build_system("bsp", config=small_config)
        system.run(store_trace(small_config, 5), finalize=True)
        for i in range(5):
            assert system.nvmm_media.read_word(paddr(small_config, i), 8) == i + 1

    def test_background_threshold_draining(self, small_config):
        system = build_system("bsp", config=small_config, entries=4)
        system.run(store_trace(small_config, 10), finalize=False)
        assert system.stats.bbpb_drains > 0


class TestPersistBeforeRespond:
    def test_remote_read_forces_persist(self, two_core_config):
        """Core 1 reads a block core 0 wrote but has not persisted: the
        value must be durable before the read completes (Invariant 3's
        BSP-style enforcement)."""
        system = build_system("bsp", config=two_core_config)
        h = system.hierarchy
        x = paddr(two_core_config, 0)
        h.store(0, x, 8, 0xAB, 0)
        assert system.nvmm_media.read_word(x, 8) == 0  # buffered only
        value, done = h.load(1, x, 8, 100)
        assert value == 0xAB
        assert system.nvmm_media.read_word(x, 8) == 0xAB  # persisted first
        assert system.stats.bsp_conflict_drains == 1

    def test_remote_read_pays_the_drain_delay(self, two_core_config):
        """Same access pattern, but one system already drained its buffer:
        the read that triggers a persist-before-respond completes later."""
        x = paddr(two_core_config, 0)
        conflicted = build_system("bsp", config=two_core_config)
        conflicted.hierarchy.store(0, x, 8, 1, 0)
        clean = build_system("bsp", config=two_core_config)
        clean.hierarchy.store(0, x, 8, 1, 0)
        clean.scheme.finalize(50)  # buffer already empty at the read
        _, t_conflict = conflicted.hierarchy.load(1, x, 8, 100)
        _, t_clean = clean.hierarchy.load(1, x, 8, 100)
        assert t_conflict > t_clean

    def test_remote_write_forces_persist_of_older_stores(self, two_core_config):
        """The bulk part: persisting a requested block persists all older
        buffered stores of that core first (in-order buffer)."""
        system = build_system("bsp", config=two_core_config)
        h = system.hierarchy
        a, b = paddr(two_core_config, 0), paddr(two_core_config, 1)
        h.store(0, a, 8, 0x1, 0)     # older
        h.store(0, b, 8, 0x2, 10)    # younger
        h.store(1, b, 8, 0x3, 100)   # remote write to the younger block
        # Draining through b persisted a as well.
        assert system.nvmm_media.read_word(a, 8) == 0x1
        assert system.nvmm_media.read_word(b, 8) == 0x2  # then overwritten later

    def test_llc_eviction_drains_first_and_drops_writeback(self, two_core_config):
        from tests.conftest import conflict_addresses

        system = build_system("bsp", config=two_core_config)
        h = system.hierarchy
        x = paddr(two_core_config, 0)
        h.store(0, x, 8, 0x42, 0)
        for i, addr in enumerate(
            conflict_addresses(two_core_config, x, two_core_config.llc.assoc)
        ):
            h.load(1, addr, 8, (i + 1) * 1000)
        assert system.nvmm_media.read_word(x, 8) == 0x42
        # Exactly one media write: the ordered drain, not the writeback.
        bx = x & ~(two_core_config.block_size - 1)
        assert system.nvmm_media.write_counts[bx] == 1


class TestCrashSemantics:
    def test_crash_loses_buffered_stores(self, small_config):
        system = build_system("bsp", config=small_config)
        result = system.run(store_trace(small_config, 3), crash_at_op=3)
        assert result.drain_report.total_units == 0
        check = check_exact_durability(system.nvmm_media, result.committed_persists)
        assert not check  # buffered stores died — unlike BBB

    @pytest.mark.parametrize("crash_at", [2, 5, 9, 14])
    def test_crash_state_is_always_a_program_order_prefix(
        self, small_config, crash_at
    ):
        """BSP's guarantee: whatever persisted is a per-core prefix."""
        system = build_system("bsp", config=small_config, entries=4)
        trace = store_trace(small_config, 15)
        result = system.run(trace, crash_at_op=crash_at)
        check = check_prefix_consistency(
            system.nvmm_media, result.committed_persists
        )
        assert check, check.violations


class TestTraitsAndGap:
    def test_table1_row(self, small_config):
        traits = build_system("bsp", config=small_config).scheme.traits()
        assert traits.name == "BSP"
        assert traits.hw_complexity == "High"
        assert traits.battery == "None"
        assert traits.pop_location == "Mem"

    def test_povpop_gap_is_nonzero(self, small_config):
        """Unlike BBB, BSP leaves the PoV/PoP gap open: persist latencies
        are strictly positive."""
        system = build_system("bsp", config=small_config, entries=4)
        system.run(store_trace(small_config, 12), finalize=True)
        assert system.stats.persist_latency_count > 0
        assert system.stats.persist_latency_avg > 0

    def test_bbb_gap_is_zero_for_comparison(self, small_config):
        system = build_system("bbb", config=small_config)
        system.run(store_trace(small_config, 12), finalize=True)
        assert system.stats.persist_latency_count == 12
        assert system.stats.persist_latency_avg == 0
