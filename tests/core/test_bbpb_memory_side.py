"""Unit tests for the memory-side bbPB (repro.core.bbpb.MemorySideBBPB)."""

import pytest

from repro.core.bbpb import MemorySideBBPB
from repro.mem.block import BlockData
from repro.sim.config import BBBConfig, DrainPolicy


class DrainSink:
    """Records drains; completes each after ``latency`` cycles, serialised."""

    def __init__(self, latency=50):
        self.latency = latency
        self.calls = []
        self.port_free = 0

    def __call__(self, block_addr, data, now):
        start = max(now, self.port_free)
        done = start + self.latency
        self.port_free = done
        self.calls.append((block_addr, data.copy(), now, done))
        return done


def make(entries=4, threshold=0.75, policy=DrainPolicy.FCFS_THRESHOLD, latency=50):
    sink = DrainSink(latency)
    cfg = BBBConfig(entries=entries, drain_threshold=threshold, drain_policy=policy)
    return MemorySideBBPB(cfg, core_id=0, drain=sink), sink


def data(v):
    d = BlockData()
    d.write_word(0, v)
    return d


class TestAllocation:
    def test_put_allocates(self):
        buf, _ = make()
        stall, allocated = buf.put(0x1000, data(1), 0)
        assert allocated and stall == 0
        assert buf.contains(0x1000)
        assert buf.allocations == 1

    def test_coalesce_same_block(self):
        buf, _ = make()
        buf.put(0x1000, data(1), 0)
        stall, allocated = buf.put(0x1000, data(2), 10)
        assert not allocated and stall == 0
        assert buf.coalesces == 1
        assert len(buf) == 1
        assert buf.entry(0x1000).data.read_word(0) == 2

    def test_distinct_blocks_get_distinct_entries(self):
        buf, _ = make()
        buf.put(0x1000, data(1), 0)
        buf.put(0x1040, data(2), 0)
        assert len(buf) == 2


class TestThresholdDraining:
    def test_no_drain_below_threshold(self):
        buf, sink = make(entries=4, threshold=0.75)  # threshold at 3
        buf.put(0x1000, data(1), 0)
        buf.put(0x1040, data(2), 0)
        assert not sink.calls

    def test_drain_starts_at_threshold(self):
        buf, sink = make(entries=4, threshold=0.75)
        for i in range(3):
            buf.put(0x1000 + i * 64, data(i), 0)
        assert len(sink.calls) >= 1

    def test_fcfs_drains_oldest_first(self):
        buf, sink = make(entries=4, threshold=0.75)
        for i in range(3):
            buf.put(0x1000 + i * 64, data(i), 0)
        assert sink.calls[0][0] == 0x1000

    def test_inflight_entries_reaped_after_completion(self):
        buf, sink = make(entries=4, threshold=0.75, latency=50)
        for i in range(3):
            buf.put(0x1000 + i * 64, data(i), 0)
        assert len(buf) == 3  # in-flight entries still occupy capacity
        buf.reap(1000)
        assert len(buf) < 3

    def test_coalesce_blocked_on_inflight_entry_allocates_new(self):
        buf, sink = make(entries=4, threshold=0.5)  # threshold at 2
        buf.put(0x1000, data(1), 0)
        buf.put(0x1040, data(2), 0)  # triggers a drain of the oldest
        assert buf.entry(0x1000) is None  # moved to the in-flight list
        stall, allocated = buf.put(0x1000, data(3), 1)
        assert allocated  # cannot coalesce into an in-flight entry
        assert len(buf) == 3  # in-flight entry still occupies capacity


class TestFullBufferStalls:
    def test_rejection_counted_when_full(self):
        buf, _ = make(entries=2, threshold=1.0, latency=50)
        buf.put(0x1000, data(1), 0)
        buf.put(0x1040, data(2), 0)
        stall, _ = buf.put(0x1080, data(3), 0)
        assert buf.rejections >= 1
        assert stall > 0

    def test_stall_equals_drain_completion_wait(self):
        buf, _ = make(entries=1, threshold=1.0, latency=50)
        buf.put(0x1000, data(1), 0)  # fills, drains at threshold=1
        stall, _ = buf.put(0x1040, data(2), 0)
        # Must wait for the in-flight drain of 0x1000 (completes at 50).
        assert stall == 50

    def test_full_buffer_coalesce_does_not_stall(self):
        buf, _ = make(entries=2, threshold=1.0)
        buf.put(0x1000, data(1), 0)
        buf.put(0x1040, data(2), 0)
        # 0x1040 is resident (threshold drain starts with oldest = 0x1000).
        stall, allocated = buf.put(0x1040, data(9), 1)
        assert stall == 0 and not allocated


class TestPolicies:
    def test_eager_drains_every_entry(self):
        buf, sink = make(entries=8, policy=DrainPolicy.EAGER)
        buf.put(0x1000, data(1), 0)
        assert len(sink.calls) == 1

    def test_drain_all_empties_at_threshold(self):
        buf, sink = make(entries=4, threshold=0.75, policy=DrainPolicy.DRAIN_ALL)
        for i in range(2):
            buf.put(0x1000 + i * 64, data(i), 0)
        assert not sink.calls
        buf.put(0x1080, data(2), 0)
        assert len(sink.calls) == 3  # all entries sent


class TestCoherenceActions:
    def test_remove_returns_data_without_draining(self):
        buf, sink = make()
        buf.put(0x1000, data(7), 0)
        removed = buf.remove(0x1000)
        assert removed.read_word(0) == 7
        assert not buf.contains(0x1000)
        assert not sink.calls
        assert buf.removes == 1

    def test_remove_absent_returns_none(self):
        buf, _ = make()
        assert buf.remove(0x1000) is None

    def test_remove_inflight_returns_none_and_lets_drain_finish(self):
        buf, sink = make(entries=2, threshold=0.5)
        buf.put(0x1000, data(1), 0)  # drains immediately (threshold 1)
        assert buf.entry(0x1000) is None  # in flight, not coalescible
        assert buf.remove(0x1000) is None
        assert sink.calls[0][0] == 0x1000

    def test_force_drain_pushes_block_now(self):
        buf, sink = make(entries=8)
        buf.put(0x1000, data(7), 0)
        done = buf.force_drain(0x1000, 100)
        assert done > 100
        assert not buf.contains(0x1000)
        assert sink.calls[-1][0] == 0x1000
        assert buf.forced_drains == 1

    def test_force_drain_absent_is_free(self):
        buf, _ = make()
        assert buf.force_drain(0x1000, 100) == 100


class TestCrashAndSettle:
    def test_crash_drain_returns_all_entries_oldest_first(self):
        buf, _ = make(entries=8)
        buf.put(0x1000, data(1), 0)
        buf.put(0x1040, data(2), 0)
        drained = buf.crash_drain()
        assert [a for a, _ in drained] == [0x1000, 0x1040]
        assert len(buf) == 0

    def test_crash_drain_carries_latest_coalesced_value(self):
        buf, _ = make(entries=8)
        buf.put(0x1000, data(1), 0)
        buf.put(0x1000, data(9), 10)
        drained = buf.crash_drain()
        assert drained[0][1].read_word(0) == 9

    def test_drain_all_settles_everything(self):
        buf, sink = make(entries=8)
        buf.put(0x1000, data(1), 0)
        buf.put(0x1040, data(2), 0)
        done = buf.drain_all(100)
        assert done >= 100
        assert len(buf) == 0
        assert {c[0] for c in sink.calls} == {0x1000, 0x1040}


class TestConfigValidation:
    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            BBBConfig(entries=0)

    def test_threshold_range(self):
        with pytest.raises(ValueError):
            BBBConfig(drain_threshold=0.0)
        with pytest.raises(ValueError):
            BBBConfig(drain_threshold=1.5)

    def test_threshold_entries(self):
        assert BBBConfig(entries=32, drain_threshold=0.75).threshold_entries == 24
        assert BBBConfig(entries=1, drain_threshold=0.75).threshold_entries == 1
