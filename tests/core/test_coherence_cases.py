"""Directed coherence scenarios from Fig. 6 and Table II of the paper.

Two cores; block X is placed in a chosen MESI state (and optionally in
core 1's bbPB), then core 2 issues the remote request.  After each scenario
the tests assert the bbPB actions of Table II: blocks move between bbPBs
without draining, interventions leave the block in place, and the block
"will drain to memory only once" even when written by multiple cores.
"""

import pytest

from repro.core.invariants import check_all
from repro.mem.block import E, I, M, S
from repro.api import build_system
from tests.conftest import conflict_addresses, paddr


@pytest.fixture
def system(two_core_config):
    return build_system("bbb", config=two_core_config, entries=8)


@pytest.fixture
def h(system):
    return system.hierarchy


@pytest.fixture
def buf(system):
    return system.scheme.buffers


def baddr_of(config, addr):
    return addr & ~(config.block_size - 1)


class TestFig6aInvalidationToMBlock:
    """Core 1 holds X in M state and in its bbPB; core 2 writes X (RdX)."""

    def setup_case(self, h, two_core_config):
        self.x = paddr(two_core_config, 0)
        h.store(0, self.x, 8, 0xAA, 0)  # M + bbPB at core 0
        return self.x

    def test_block_moves_to_requesting_bbpb(self, system, h, buf, two_core_config):
        x = self.setup_case(h, two_core_config)
        bx = baddr_of(two_core_config, x)
        assert buf[0].contains(bx)
        h.store(1, x + 8, 8, 0xBB, 100)
        assert not buf[0].contains(bx)
        assert buf[1].contains(bx)
        check_all(system)

    def test_no_drain_on_move(self, system, h, buf, two_core_config):
        x = self.setup_case(h, two_core_config)
        h.store(1, x + 8, 8, 0xBB, 100)
        assert system.stats.bbpb_drains == 0
        assert system.stats.bbpb_moves == 1

    def test_l1_states_after_move(self, h, two_core_config):
        x = self.setup_case(h, two_core_config)
        h.store(1, x + 8, 8, 0xBB, 100)
        assert h.l1_state(0, x) is I
        assert h.l1_state(1, x) is M

    def test_moved_entry_carries_both_writes(self, buf, h, two_core_config):
        """The new bbPB entry holds the full block value, so the single
        eventual drain durably covers core 0's store too."""
        x = self.setup_case(h, two_core_config)
        bx = baddr_of(two_core_config, x)
        h.store(1, x + 8, 8, 0xBB, 100)
        entry = buf[1].entry(bx)
        assert entry.data.read_word(0, 8) == 0xAA
        assert entry.data.read_word(8, 8) == 0xBB

    def test_ping_pong_block_drains_once_with_final_value(
        self, system, h, buf, two_core_config
    ):
        x = self.setup_case(h, two_core_config)
        bx = baddr_of(two_core_config, x)
        for i in range(1, 6):
            h.store(i % 2, x, 8, i, i * 100)
        # Settle: exactly one durable write for the whole ping-pong.
        system.scheme.finalize(10_000)
        assert system.stats.bbpb_drains == 1
        assert h.nvmm.media.read_word(x, 8) == 5


class TestFig6bInvalidationToSBlock:
    """Block shared by both cores, still in core 0's bbPB after a downgrade;
    core 2 upgrades."""

    def setup_case(self, h, two_core_config):
        x = paddr(two_core_config, 0)
        h.store(0, x, 8, 0xAA, 0)      # core 0: M + bbPB
        h.load(1, x, 8, 50)            # intervention: both S, bbPB keeps X
        return x

    def test_shared_state_with_bbpb_residency(self, h, buf, two_core_config):
        x = self.setup_case(h, two_core_config)
        assert h.l1_state(0, x) is S and h.l1_state(1, x) is S
        assert buf[0].contains(baddr_of(two_core_config, x))

    def test_upgrade_moves_bbpb_entry(self, system, h, buf, two_core_config):
        x = self.setup_case(h, two_core_config)
        bx = baddr_of(two_core_config, x)
        h.store(1, x + 8, 8, 0xBB, 100)  # Upgrade from S
        assert not buf[0].contains(bx)
        assert buf[1].contains(bx)
        assert h.l1_state(0, x) is I
        assert h.l1_state(1, x) is M
        assert system.stats.bbpb_drains == 0
        check_all(system)


class TestFig6cInterventionToMBlock:
    """Core 1 holds X in M and in bbPB; core 2 reads X."""

    def test_block_stays_in_original_bbpb(self, system, h, buf, two_core_config):
        x = paddr(two_core_config, 0)
        h.store(0, x, 8, 0xAA, 0)
        bx = baddr_of(two_core_config, x)
        value, _ = h.load(1, x, 8, 100)
        assert value == 0xAA
        assert buf[0].contains(bx)       # stays put (Fig. 6c)
        assert not buf[1].contains(bx)
        assert h.l1_state(0, x) is S and h.l1_state(1, x) is S
        assert system.stats.bbpb_drains == 0
        check_all(system)

    def test_no_memory_writeback_on_downgrade(self, system, h, two_core_config):
        """Traditional MESI would write the M block back on an M->S
        downgrade; BBB's memory-side view skips it (bandwidth saving)."""
        x = paddr(two_core_config, 0)
        h.store(0, x, 8, 0xAA, 0)
        h.load(1, x, 8, 100)
        assert system.stats.nvmm_writes == 0


class TestTableIIRemainingRows:
    def test_e_state_with_bbpb_remote_inv(self, system, h, buf, two_core_config):
        """E + in-bbPB arises when the L1 copy was refetched after eviction
        while the bbPB entry survived; a remote write must still evict the
        bbPB entry (Table II row E/Y -> Invalidate)."""
        x = paddr(two_core_config, 0)
        bx = baddr_of(two_core_config, x)
        h.store(0, x, 8, 0xAA, 0)
        # Evict X from core 0's L1 (fill its set), leaving the bbPB entry.
        sets = two_core_config.l1d.num_sets
        for i in range(1, two_core_config.l1d.assoc + 1):
            h.load(0, x + i * sets * two_core_config.block_size, 8, i * 10)
        assert h.l1_state(0, x) is I
        assert buf[0].contains(bx)
        h.store(1, x, 8, 0xBB, 1_000)
        assert not buf[0].contains(bx)
        assert buf[1].contains(bx)
        check_all(system)

    def test_local_write_coalesces(self, system, h, buf, two_core_config):
        x = paddr(two_core_config, 0)
        h.store(0, x, 8, 1, 0)
        h.store(0, x + 8, 8, 2, 10)
        assert system.stats.bbpb_allocations == 1
        assert system.stats.bbpb_coalesces == 1
        assert len(buf[0]) == 1

    def test_local_read_unmodified(self, system, h, buf, two_core_config):
        x = paddr(two_core_config, 0)
        h.store(0, x, 8, 1, 0)
        h.load(0, x, 8, 10)
        assert buf[0].contains(baddr_of(two_core_config, x))
        assert system.stats.bbpb_drains == 0

    def test_not_in_bbpb_rows_are_unmodified_mesi(self, system, h, buf, two_core_config):
        """Blocks outside the persistent region never touch the bbPB."""
        from tests.conftest import daddr

        x = daddr(two_core_config, 0)
        h.store(0, x, 8, 1, 0)
        h.load(1, x, 8, 10)
        h.store(1, x, 8, 2, 20)
        assert len(buf[0]) == 0 and len(buf[1]) == 0
        assert h.l1_state(1, x) is M


class TestDirtyInclusionForcedDrain:
    def test_llc_eviction_force_drains_bbpb_block(self, system, h, buf, two_core_config):
        x = paddr(two_core_config, 0)
        bx = baddr_of(two_core_config, x)
        h.store(0, x, 8, 0x42, 0)
        assert buf[0].contains(bx)
        for i, addr in enumerate(
            conflict_addresses(two_core_config, x, two_core_config.llc.assoc)
        ):
            h.load(1, addr, 8, (i + 1) * 1000)
        assert h.llc_block(x) is None
        assert not buf[0].contains(bx)          # forced out (Invariant 4b)
        assert system.stats.bbpb_forced_drains == 1
        assert h.nvmm.media.read_word(x, 8) == 0x42
        check_all(system)

    def test_persistent_dirty_writeback_silently_dropped(
        self, system, h, two_core_config
    ):
        """After the forced drain the LLC writeback is redundant and must be
        dropped (write-endurance saving, Section III-E)."""
        x = paddr(two_core_config, 0)
        h.store(0, x, 8, 0x42, 0)
        for i, addr in enumerate(
            conflict_addresses(two_core_config, x, two_core_config.llc.assoc)
        ):
            h.load(1, addr, 8, (i + 1) * 1000)
        assert system.stats.llc_writebacks_dropped >= 1
        # Exactly one media write for block X: the forced drain.
        assert h.nvmm.media.write_counts[baddr_of(two_core_config, x)] == 1
