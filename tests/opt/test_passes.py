"""Tests for the optimizer passes and their registry (repro.opt.passes)."""

import pytest

from repro.core.registry import iter_schemes, scheme_info
from repro.opt import (
    Op,
    PassContext,
    Program,
    apply_pass,
    iter_passes,
    pass_info,
    pass_names,
    removed_positions,
)
from repro.sim.config import SystemConfig
from repro.sim.trace import OpKind

CFG = SystemConfig(num_cores=2).scaled_for_testing()
PBASE = CFG.mem.persistent_base

# A scheme per contract class, selected by capability (never by name).
FULL = next(s.name for s in iter_schemes()
            if s.subsumes_ordering("flush") and s.subsumes_ordering("fence")
            and s.subsumes_ordering("epoch"))
KEEPS_FLUSH = next(s.name for s in iter_schemes()
                   if not s.subsumes_ordering("flush"))


def ctx(scheme):
    return PassContext(scheme=scheme_info(scheme),
                       block_size=CFG.block_size)


def prog(*ops):
    return Program(threads=(tuple(ops),), name="t")


def store(addr, value=1):
    return Op(OpKind.STORE, addr=addr, value=value, durable=True)


def flush(addr):
    return Op(OpKind.FLUSH, addr=addr, durable=True)


FENCE = Op(OpKind.FENCE)
EPOCH = Op(OpKind.EPOCH)


class TestRegistry:
    def test_default_names_exclude_mutants(self):
        names = pass_names()
        assert "opt-drop-epoch-fence" not in names
        assert "elide-flush" in names
        assert "opt-drop-epoch-fence" in pass_names(include_mutants=True)

    def test_unknown_pass_raises_with_valid_names(self):
        with pytest.raises(ValueError, match="elide-flush"):
            pass_info("no-such-pass")

    def test_mutant_and_gating_flags(self):
        infos = {info.name: info for info in iter_passes()}
        assert infos["opt-drop-epoch-fence"].mutant
        assert infos["elide-fence"].contract_gated
        assert not infos["drop-dead-flush"].contract_gated


class TestRemovedPositions:
    def test_recovers_deletions_by_identity(self):
        a, b, c = store(PBASE), FENCE, EPOCH
        assert removed_positions((a, b, c), (a, c)) == [1]
        assert removed_positions((a, b, c), (a, b, c)) == []

    def test_rejects_reorder_and_rebuild(self):
        a, b = store(PBASE), FENCE
        with pytest.raises(ValueError, match="identity-subsequence"):
            removed_positions((a, b), (b, a))
        with pytest.raises(ValueError, match="identity-subsequence"):
            # Equal value but a different object: a rebuilt op is not
            # a removal, and the audit could not trust its provenance.
            removed_positions((a, b), (store(PBASE), b))


class TestIndependentPasses:
    def test_coalesce_drops_adjacent_same_address_store(self):
        s1, s2 = store(PBASE, 1), store(PBASE, 2)
        out = apply_pass(prog(s1, s2), "coalesce-stores", ctx(KEEPS_FLUSH))
        assert out.threads[0] == (s2,)

    def test_coalesce_keeps_separated_stores(self):
        s1, s2 = store(PBASE, 1), store(PBASE, 2)
        out = apply_pass(prog(s1, FENCE, s2), "coalesce-stores",
                         ctx(KEEPS_FLUSH))
        assert out.threads[0] == (s1, FENCE, s2)

    def test_drop_dead_flush(self):
        s = store(PBASE)
        f1, f2, f3 = flush(PBASE), flush(PBASE), flush(PBASE + 64)
        out = apply_pass(prog(s, f1, f2, f3), "drop-dead-flush",
                         ctx(KEEPS_FLUSH))
        # f2 is a duplicate clwb, f3 flushes a line never stored to.
        assert out.threads[0] == (s, f1)

    def test_weaken_fence(self):
        s, f = store(PBASE), flush(PBASE)
        out = apply_pass(prog(FENCE, s, f, FENCE, FENCE), "weaken-fence",
                         ctx(KEEPS_FLUSH))
        # Only the fence with an outstanding clwb survives.
        assert [op.kind for op in out.threads[0]] == \
            [OpKind.STORE, OpKind.FLUSH, OpKind.FENCE]


class TestContractGatedPasses:
    def test_elide_respects_contract(self):
        s, f = store(PBASE), flush(PBASE)
        p = prog(s, f, FENCE, EPOCH)
        for name in ("elide-flush", "elide-fence", "elide-epoch"):
            assert apply_pass(p, name, ctx(FULL)).total_ops < p.total_ops

    def test_elision_noop_when_contract_keeps_the_kind(self):
        s, f = store(PBASE), flush(PBASE)
        p = prog(s, f, FENCE)
        assert apply_pass(p, "elide-flush", ctx(KEEPS_FLUSH)).threads == \
            p.threads

    def test_mutant_drops_fences_regardless_of_contract(self):
        p = prog(store(PBASE), flush(PBASE), FENCE, EPOCH)
        out = apply_pass(p, "opt-drop-epoch-fence", ctx(KEEPS_FLUSH))
        assert [op.kind for op in out.threads[0]] == \
            [OpKind.STORE, OpKind.FLUSH]
