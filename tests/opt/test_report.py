"""Tests for optimizer reporting and artifacts (repro.opt.report)."""

import json

import pytest

from repro.core.registry import ORDERING_FENCE, ORDERING_FLUSH, iter_schemes
from repro.ioutil import ArtifactError
from repro.opt import (
    OPT_SCHEMA,
    compare_cell,
    opt_compare,
    render_compare_table,
    replay_report,
    write_report,
)
from repro.workloads.base import WorkloadSpec

SPEC = WorkloadSpec(threads=2, ops=4, elements=64, seed=3)

FULL = next(s.name for s in iter_schemes()
            if s.subsumes_ordering(ORDERING_FLUSH)
            and s.subsumes_ordering(ORDERING_FENCE))
KEEPER = next(s.name for s in iter_schemes()
              if not s.subsumes_ordering(ORDERING_FLUSH))


class TestCompareCell:
    def test_full_contract_cell_wins(self):
        row = compare_cell("hashmap", FULL, SPEC, entries=4)
        assert row["flush_fence_elision_pct"] == 100.0
        assert row["cycles_optimized"] < row["cycles_naive"]
        assert row["audit_ok"] and row["image_ok"]

    def test_keeper_cell_is_a_noop(self):
        row = compare_cell("hashmap", KEEPER, SPEC, entries=4)
        assert row["flush_fence_elision_pct"] == 0.0
        assert row["ops_optimized"] == row["ops_naive"]
        assert row["cycles_delta_pct"] == 0.0
        assert row["audit_ok"] and row["image_ok"]


class TestCompareReport:
    @pytest.fixture(scope="class")
    def report(self):
        return opt_compare(
            workloads=["hashmap", "mutateNC"], schemes=[FULL, KEEPER],
            spec=SPEC, entries=4, jobs=1,
        )

    def test_shape_and_schema(self, report):
        assert report["schema"] == OPT_SCHEMA
        assert report["kind"] == "compare"
        assert len(report["rows"]) == 4
        assert set(report["by_scheme"]) == {FULL, KEEPER}

    def test_by_scheme_rollup(self, report):
        assert report["by_scheme"][FULL]["mean_elision_pct"] == 100.0
        assert report["by_scheme"][KEEPER]["mean_elision_pct"] == 0.0
        for scheme in (FULL, KEEPER):
            assert report["by_scheme"][scheme]["all_audits_ok"]
            assert report["by_scheme"][scheme]["all_images_ok"]

    def test_render_table(self, report):
        table = render_compare_table(report)
        assert "hashmap" in table and FULL in table
        assert "100.0%" in table

    def test_write_and_replay_round_trip(self, report, tmp_path):
        path = str(tmp_path / "opt.json")
        assert write_report(report, path) == path
        out = replay_report(path, jobs=1)
        assert out["reproduced"], out["mismatches"]
        assert out["artifact"]["schema"] == OPT_SCHEMA

    def test_replay_detects_a_tampered_artifact(self, report, tmp_path):
        path = tmp_path / "opt.json"
        doctored = json.loads(json.dumps(report))
        doctored["rows"][0]["flush_fence_elision_pct"] = 12.5
        path.write_text(json.dumps(doctored))
        out = replay_report(str(path), jobs=1)
        assert not out["reproduced"]
        assert any("flush_fence_elision_pct" in m
                   for m in out["mismatches"])

    def test_replay_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"schema": "repro.other/v1",
                                    "kind": "compare", "rows": []}))
        with pytest.raises(ArtifactError):
            replay_report(str(path))
