"""Tests for the optimizer's verification layer (repro.opt.verify)."""

import pytest

from repro.core.registry import (
    ORDERING_EPOCH,
    ORDERING_FENCE,
    iter_schemes,
    scheme_info,
)
from repro.opt import (
    MUTANT_PIPELINE,
    Op,
    PassContext,
    Program,
    audit_pipeline,
    fence_is_redundant,
    flush_is_redundant,
    removal_justified,
    store_is_coalescible,
    verify_litmus_cell,
    verify_workload_cell,
)
from repro.sim.config import SystemConfig
from repro.sim.trace import OpKind
from repro.workloads.base import WorkloadSpec

CFG = SystemConfig(num_cores=2).scaled_for_testing()
PBASE = CFG.mem.persistent_base
SPEC = WorkloadSpec(threads=2, ops=3, elements=64, seed=3)

FULL = next(s.name for s in iter_schemes()
            if s.subsumes_ordering(ORDERING_FENCE)
            and s.subsumes_ordering(ORDERING_EPOCH))
STRICT_KEEPER = next(
    s.name for s in iter_schemes()
    if not s.subsumes_ordering(ORDERING_FENCE) and s.exact_durability)


def store(addr, value=1):
    return Op(OpKind.STORE, addr=addr, value=value, durable=True)


def flush(addr):
    return Op(OpKind.FLUSH, addr=addr, durable=True)


FENCE = Op(OpKind.FENCE)
EPOCH = Op(OpKind.EPOCH)


class TestRedundancyPredicates:
    def test_flush_redundant_without_prior_store(self):
        ops = (flush(PBASE), store(PBASE), flush(PBASE), flush(PBASE))
        assert flush_is_redundant(ops, 0)
        assert not flush_is_redundant(ops, 2)
        assert flush_is_redundant(ops, 3)

    def test_flush_line_granularity(self):
        ops = (store(PBASE + 8), flush(PBASE), flush(PBASE + 64))
        # Same 64-byte line as the store: load-bearing.
        assert not flush_is_redundant(ops, 1, block_size=64)
        assert flush_is_redundant(ops, 2, block_size=64)

    def test_fence_redundant_without_outstanding_flush(self):
        ops = (FENCE, store(PBASE), flush(PBASE), FENCE, FENCE)
        assert fence_is_redundant(ops, 0)
        assert not fence_is_redundant(ops, 3)
        assert fence_is_redundant(ops, 4)

    def test_store_coalescible_only_when_adjacent(self):
        a, b = store(PBASE, 1), store(PBASE, 2)
        assert store_is_coalescible((a, b), 0)
        assert not store_is_coalescible((a, FENCE, b), 0)
        assert not store_is_coalescible((a, b), 1)  # last op
        volatile = Op(OpKind.STORE, addr=PBASE, value=2)
        assert not store_is_coalescible((a, volatile), 0)


class TestRemovalJustified:
    def ctx(self, scheme):
        return PassContext(scheme=scheme_info(scheme),
                           block_size=CFG.block_size)

    def test_contract_subsumption_justifies(self):
        ops = (store(PBASE), flush(PBASE), FENCE)
        ok, why = removal_justified(ops, 1, self.ctx(FULL))
        assert ok and "ordering contract" in why

    def test_load_bearing_fence_rejected_with_reason(self):
        ops = (store(PBASE), flush(PBASE), FENCE)
        ok, why = removal_justified(ops, 2, self.ctx(STRICT_KEEPER))
        assert not ok and "not subsumed" in why

    def test_loads_and_computes_never_removable(self):
        ops = (Op(OpKind.LOAD, addr=PBASE), Op(OpKind.COMPUTE, cycles=1))
        for i in range(2):
            ok, why = removal_justified(ops, i, self.ctx(FULL))
            assert not ok and "never removable" in why


class TestAudit:
    def probe(self):
        return Program(threads=((
            store(PBASE + 64), flush(PBASE + 64), FENCE, EPOCH,
        ),), name="probe")

    def test_default_pipeline_is_audit_clean_everywhere(self):
        for info in iter_schemes():
            audit = audit_pipeline(self.probe(), info.name,
                                   block_size=CFG.block_size)
            assert audit.ok, (info.name, audit.describe_violations())

    def test_mutant_caught_exactly_where_the_contract_says(self):
        for info in iter_schemes():
            audit = audit_pipeline(self.probe(), info.name,
                                   passes=MUTANT_PIPELINE)
            expected_caught = not (
                info.subsumes_ordering(ORDERING_FENCE)
                and info.subsumes_ordering(ORDERING_EPOCH)
            )
            assert (not audit.ok) == expected_caught, info.name

    def test_violation_rows_name_the_op_by_provenance(self):
        audit = audit_pipeline(self.probe(), STRICT_KEEPER,
                               passes=MUTANT_PIPELINE)
        assert not audit.ok
        text = audit.describe_violations()[0]
        assert "opt-drop-epoch-fence" in text
        assert "thread 0" in text


class TestWorkloadCell:
    @pytest.mark.parametrize("scheme", [FULL, STRICT_KEEPER])
    def test_cell_verifies_clean(self, scheme):
        cell = verify_workload_cell("mutateNC", scheme, spec=SPEC,
                                    config=CFG, entries=2)
        assert cell["ok"], cell["failures"]
        assert cell["fingerprints_equal"]
        assert cell["optimized_consistent"]
        assert cell["counterexample"] is None

    def test_full_contract_cell_elides_everything(self):
        cell = verify_workload_cell("mutateNC", FULL, spec=SPEC,
                                    config=CFG, entries=2)
        assert cell["flush_fence_elision_pct"] == 100.0
        assert cell["ops_optimized"] < cell["ops_naive"]
        # Fewer ops -> fewer micro-step crash points to explore.
        assert cell["checker_points"]["optimized"] < \
            cell["checker_points"]["naive"]


class TestLitmusCell:
    def test_smoke_cells_verify_clean(self):
        from repro.litmus.corpus import smoke_corpus

        test = smoke_corpus()[0]
        for scheme in (FULL, STRICT_KEEPER):
            cell = verify_litmus_cell(test, scheme, config=CFG, entries=2)
            assert cell["ok"], cell["failures"]
            assert cell["forbidden"] == []
            assert cell["observed_states"] >= 1

    def test_mutant_pipeline_flagged_by_the_audit(self):
        # A test whose program carries a load-bearing sfence (a clwb
        # outstanding before it) — the mutant's deletion of it cannot be
        # justified under a fence-keeping scheme.
        from repro.litmus.corpus import smoke_corpus

        test = next(t for t in smoke_corpus()
                    if t.name == "mp-flush-fence")
        cell = verify_litmus_cell(test, STRICT_KEEPER, config=CFG,
                                  entries=2, passes=MUTANT_PIPELINE,
                                  minimize=False)
        assert not cell["ok"]
        assert any("opt-drop-epoch-fence" in f for f in cell["failures"])
