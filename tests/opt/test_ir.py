"""Tests for the unified program IR (repro.opt.ir)."""

import pytest

from repro.opt import INSTRUMENT_FENCE, INSTRUMENT_FLUSH, Op, Program, \
    instrument_naive
from repro.sim.config import SystemConfig
from repro.sim.trace import OpKind, TraceOp

CFG = SystemConfig(num_cores=2).scaled_for_testing()
PBASE = CFG.mem.persistent_base


def sample_program():
    return Program(
        threads=(
            (
                Op(OpKind.STORE, addr=PBASE, value=7, origin="t0/a",
                   durable=True),
                Op(OpKind.FLUSH, addr=PBASE, origin="t0/b", durable=True),
                Op(OpKind.FENCE, origin="t0/c"),
                Op(OpKind.LOAD, addr=0x100, size=4, origin="t0/d"),
                Op(OpKind.COMPUTE, cycles=3),
                Op(OpKind.EPOCH),
            ),
            (Op(OpKind.STORE, addr=PBASE + 64, value=9, tag="x",
                durable=True),),
        ),
        name="sample",
    )


class TestOp:
    def test_trace_op_round_trip_keeps_executable_fields(self):
        op = Op(OpKind.STORE, addr=0x40, size=4, value=5, cycles=2,
                tag="t", origin="who", durable=True)
        back = Op.from_trace_op(op.to_trace_op(), origin="who", durable=True)
        assert back == op

    def test_payload_round_trip_keeps_metadata(self):
        for _, _, op in sample_program().iter_ops():
            assert Op.from_payload(op.to_payload()) == op

    def test_payload_omits_defaults(self):
        assert Op(OpKind.FENCE).to_payload() == {"k": "fence"}

    def test_bad_payload_kind_raises(self):
        with pytest.raises(ValueError, match="unknown kind"):
            Op.from_payload({"k": "teleport"})

    def test_describe_names_origin(self):
        text = Op(OpKind.STORE, addr=0x40, value=1, origin="wl/3").describe()
        assert "0x40" in text and "wl/3" in text


class TestProgram:
    def test_counts(self):
        program = sample_program()
        assert program.num_threads == 2
        assert program.total_ops == 7
        assert program.count(OpKind.STORE) == 2
        assert program.kind_counts()["flush"] == 1
        assert program.kind_counts()["load"] == 1

    def test_trace_round_trip_is_lossless_on_executable_fields(self):
        program = sample_program()
        trace = program.to_trace()
        back = Program.from_trace(
            trace, name=program.name, origin="",
            is_persistent=CFG.mem.is_persistent,
        )
        assert back.to_trace().threads[0].ops == trace.threads[0].ops
        assert back.total_ops == program.total_ops
        # Durable-location metadata is re-derived from the predicate.
        stores = [op for _, _, op in back.iter_ops()
                  if op.kind is OpKind.STORE]
        assert all(op.durable for op in stores)

    def test_columnar_round_trip(self):
        program = sample_program()
        back = Program.from_columnar(
            program.to_columnar(), name=program.name,
            is_persistent=CFG.mem.is_persistent,
        )
        assert back.to_trace().threads[1].ops == \
            program.to_trace().threads[1].ops

    def test_payload_round_trip_exact(self):
        program = sample_program()
        assert Program.from_payload(program.to_payload()) == program

    def test_bad_payload_raises(self):
        with pytest.raises(ValueError, match="threads"):
            Program.from_payload({"name": "x"})

    def test_from_trace_without_predicate_reads_volatile(self):
        program = Program.from_trace(sample_program().to_trace())
        assert all(not op.durable for _, _, op in program.iter_ops())


class TestInstrumentNaive:
    def test_inserts_clwb_and_sfence_after_durable_stores(self):
        program = instrument_naive(sample_program())
        ops = program.threads[1]
        assert [op.kind for op in ops] == \
            [OpKind.STORE, OpKind.FLUSH, OpKind.FENCE]
        assert ops[1].origin == INSTRUMENT_FLUSH
        assert ops[1].addr == ops[0].addr
        assert ops[2].origin == INSTRUMENT_FENCE

    def test_volatile_stores_left_alone(self):
        program = Program(
            threads=((Op(OpKind.STORE, addr=0x40, value=1),),)
        )
        assert instrument_naive(program).total_ops == 1


class TestProducers:
    def test_workload_build_program_carries_metadata(self):
        from repro.workloads.base import WorkloadSpec, make_workload

        spec = WorkloadSpec(threads=2, ops=4, elements=64, seed=3)
        wl = make_workload("hashmap", CFG.mem, spec)
        program = wl.build_program()
        assert program.name == wl.name
        assert program.to_trace().total_ops() == wl.build().total_ops()
        durable_stores = [op for _, _, op in program.iter_ops()
                          if op.kind is OpKind.STORE and op.durable]
        assert durable_stores
        assert all(op.origin == wl.name for _, _, op in program.iter_ops())

    def test_litmus_lower_program_matches_lower(self):
        from repro.litmus.corpus import smoke_corpus
        from repro.litmus.dsl import lower, lower_program

        test = smoke_corpus()[0]
        program, addrs = lower_program(test, CFG)
        trace, addrs2 = lower(test, CFG)
        assert addrs == addrs2
        assert [t.ops for t in program.to_trace().threads] == \
            [t.ops for t in trace.threads]
        assert all(op.origin.startswith(test.name)
                   for _, _, op in program.iter_ops())
