"""Tests for the optimizer pipeline (repro.opt.pipeline)."""

import pytest

from repro.core.registry import iter_schemes
from repro.obs.bus import EventBus
from repro.obs.events import OptPassApplied
from repro.opt import (
    DEFAULT_PIPELINE,
    Op,
    Program,
    instrument_naive,
    run_pipeline,
)
from repro.sim.config import SystemConfig
from repro.sim.trace import OpKind
from repro.workloads.base import WorkloadSpec, make_workload

CFG = SystemConfig(num_cores=2).scaled_for_testing()
SPEC = WorkloadSpec(threads=2, ops=4, elements=64, seed=3)

FULL = next(s.name for s in iter_schemes()
            if s.subsumes_ordering("flush") and s.subsumes_ordering("fence")
            and s.subsumes_ordering("epoch"))
KEEPS_ALL = next(s.name for s in iter_schemes()
                 if not s.subsumes_ordering("flush")
                 and not s.subsumes_ordering("fence"))


def instrumented():
    wl = make_workload("hashmap", CFG.mem, SPEC)
    return instrument_naive(wl.build_program())


class TestRunPipeline:
    def test_full_contract_elides_all_instrumentation(self):
        naive = instrumented()
        result = run_pipeline(naive, FULL, block_size=CFG.block_size)
        assert result.flush_fence_elision_pct == 100.0
        assert result.optimized.count(OpKind.FLUSH) == 0
        assert result.optimized.count(OpKind.FENCE) == 0
        # Loads/stores/computes are never elision targets.
        assert result.optimized.count(OpKind.LOAD) == \
            naive.count(OpKind.LOAD)

    def test_flush_keeping_scheme_keeps_the_instrumentation(self):
        naive = instrumented()
        result = run_pipeline(naive, KEEPS_ALL, block_size=CFG.block_size)
        # instrument_naive emits no dead clwbs or no-op sfences, so the
        # independent passes find nothing and elision stays at zero.
        assert result.flush_fence_elision_pct == 0.0
        assert result.optimized.total_ops == naive.total_ops

    def test_per_pass_accounting_sums_to_the_total_removal(self):
        naive = instrumented()
        result = run_pipeline(naive, FULL, block_size=CFG.block_size)
        removed = sum(app.removed for app in result.passes)
        assert removed == naive.total_ops - result.optimized.total_ops
        assert [app.name for app in result.passes] == list(DEFAULT_PIPELINE)

    def test_removed_of_matches_kind_counts(self):
        result = run_pipeline(instrumented(), FULL,
                              block_size=CFG.block_size)
        assert result.removed_of("flush") == \
            result.input_counts["flush"] - result.output_counts["flush"]

    def test_elision_pct_of_absent_kind_is_zero(self):
        program = Program(threads=((Op(OpKind.COMPUTE, cycles=1),),))
        result = run_pipeline(program, FULL)
        assert result.flush_fence_elision_pct == 0.0

    def test_unknown_pass_fails_fast(self):
        with pytest.raises(ValueError, match="unknown optimizer pass"):
            run_pipeline(instrumented(), FULL, passes=("no-such-pass",))

    def test_emits_pass_events_when_bus_enabled(self):
        bus = EventBus()
        seen = []
        bus.subscribe(
            lambda ev: seen.append(ev)
            if isinstance(ev, OptPassApplied) else None)
        run_pipeline(instrumented(), FULL, block_size=CFG.block_size,
                     bus=bus)
        assert len(seen) == len(DEFAULT_PIPELINE)
        assert any(ev.removed for ev in seen)
        assert all(ev.scheme == FULL for ev in seen)
