"""Observability must be free: bit-identical stats with the bus disabled.

``tests/data/golden_stats.json`` was captured from the simulator *before*
the event-bus instrumentation landed (nine workload/scheme/consistency
combos, every SimStats counter).  These tests prove:

1. the instrumented simulator still reproduces every golden counter
   bit-for-bit with the default (disabled) bus, and
2. enabling the bus — recorder subscribed, every event constructed and
   delivered — still changes nothing about the simulated outcome.

If a hot-path change legitimately alters the numbers, recapture the file:
run every combo below and rewrite the JSON (the fingerprint format is the
``totals``/``cores`` portion of the ``repro.simstats/v1`` schema, keyed by
``workload/scheme/{kwargs}/consistency``).
"""

import dataclasses
import json
import pathlib

import pytest

from repro.analysis.experiments import default_sim_config
from repro.api import RunOptions, build_system
from repro.obs.bus import EventBus, EventRecorder
from repro.sim.config import ConsistencyModel
from repro.sim.stats import CORE_FIELDS, SCALAR_FIELDS
from repro.workloads.base import WorkloadSpec, build_cached, seed_media_words

GOLDEN_PATH = pathlib.Path(__file__).parent.parent / "data" / "golden_stats.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

SPEC = WorkloadSpec(threads=4, ops=80, elements=2048, seed=7)

COMBOS = [
    ("hashmap", "bbb", {"entries": 32}, "tso"),
    ("hashmap", "bbb", {"entries": 4}, "tso"),
    ("swapNC", "eadr", {}, "tso"),
    ("mutateC", "pmem", {}, "tso"),
    ("ctree", "bep", {"entries": 16}, "tso"),
    ("mutateNC", "bsp", {"entries": 16}, "tso"),
    ("swapC", "none", {}, "tso"),
    ("hashmap", "bbb-proc", {"entries": 8}, "tso"),
    ("hashmap", "bbb", {"entries": 32}, "relaxed"),
]


def _key(workload, scheme, kwargs, consistency):
    return f"{workload}/{scheme}/{json.dumps(kwargs, sort_keys=True)}/{consistency}"


def _fingerprint(stats):
    out = {f: getattr(stats, f) for f in SCALAR_FIELDS}
    out["bbpb_per_core"] = {
        str(k): v for k, v in sorted(stats.bbpb_per_core.items())
    }
    out["cores"] = [
        {f: getattr(c, f) for f in CORE_FIELDS} for c in stats.core
    ]
    return out


def _run_combo(workload, scheme, kwargs, consistency, bus=None):
    cfg = default_sim_config()
    if consistency == "relaxed":
        cfg = dataclasses.replace(cfg, consistency=ConsistencyModel.RELAXED)
    trace, initial_words = build_cached(workload, cfg.mem, SPEC)
    extra = (
        {"options": RunOptions(bus=bus)} if bus is not None else {}
    )
    system = build_system(scheme, config=cfg, **kwargs, **extra)
    seed_media_words(system.nvmm_media, initial_words)
    system.run(trace, finalize=False)
    return system.stats


class TestGoldenFingerprints:
    def test_golden_file_covers_every_combo(self):
        assert set(GOLDEN) == {_key(*combo) for combo in COMBOS}

    @pytest.mark.parametrize(
        "workload,scheme,kwargs,consistency", COMBOS,
        ids=[_key(*c) for c in COMBOS],
    )
    def test_disabled_bus_matches_pre_obs_simulator(
        self, workload, scheme, kwargs, consistency
    ):
        stats = _run_combo(workload, scheme, kwargs, consistency)
        assert _fingerprint(stats) == GOLDEN[_key(workload, scheme, kwargs,
                                                  consistency)]


class TestEnabledBusIsPure:
    @pytest.mark.parametrize(
        "workload,scheme,kwargs,consistency",
        [
            ("hashmap", "bbb", {"entries": 4}, "tso"),
            ("mutateC", "pmem", {}, "tso"),
            ("ctree", "bep", {"entries": 16}, "tso"),
        ],
        ids=["bbb", "pmem", "bep"],
    )
    def test_observed_run_has_identical_stats(
        self, workload, scheme, kwargs, consistency
    ):
        bus = EventBus()
        recorder = EventRecorder(bus)
        observed = _run_combo(workload, scheme, kwargs, consistency, bus=bus)
        assert recorder.events  # the run really was observed
        assert _fingerprint(observed) == GOLDEN[
            _key(workload, scheme, kwargs, consistency)
        ]
