"""Unit tests for the event bus (repro.obs.bus)."""

import pytest

from repro.obs.bus import NULL_BUS, EventBus, EventRecorder
from repro.obs.events import BbpbAlloc, DrainStart


def _alloc(cycle=1, core=0):
    return BbpbAlloc(cycle=cycle, core=core, addr=0x1000, occupancy=1)


class TestEventBus:
    def test_delivers_in_subscription_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(("a", e)))
        bus.subscribe(lambda e: seen.append(("b", e)))
        event = _alloc()
        bus.emit(event)
        assert seen == [("a", event), ("b", event)]

    def test_disabled_bus_drops_events(self):
        bus = EventBus(enabled=False)
        seen = []
        bus.subscribe(seen.append)
        bus.emit(_alloc())
        assert seen == []

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        fn = bus.subscribe(seen.append)
        bus.unsubscribe(fn)
        bus.emit(_alloc())
        assert seen == []
        assert len(bus) == 0

    def test_subscribe_returns_fn_for_decorator_use(self):
        bus = EventBus()

        @bus.subscribe
        def handler(event):
            pass

        assert handler is not None
        assert len(bus) == 1


class TestNullBus:
    def test_shared_instance_is_disabled(self):
        assert not NULL_BUS.enabled

    def test_refuses_subscribers(self):
        with pytest.raises(RuntimeError, match="NULL_BUS"):
            NULL_BUS.subscribe(lambda e: None)

    def test_emit_is_a_noop(self):
        NULL_BUS.emit(_alloc())  # must not raise


class TestEventRecorder:
    def test_records_and_counts(self):
        bus = EventBus()
        rec = EventRecorder(bus)
        bus.emit(_alloc(cycle=1))
        bus.emit(_alloc(cycle=2))
        bus.emit(DrainStart(cycle=3, core=0, addr=0x40, complete_at=10,
                            occupancy=2))
        assert len(rec) == 3
        assert rec.counts() == {"bbpb_alloc": 2, "drain_start": 1}

    def test_clear(self):
        bus = EventBus()
        rec = EventRecorder(bus)
        bus.emit(_alloc())
        rec.clear()
        assert len(rec) == 0
