"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_monotonic(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_tracks_min_max(self):
        g = Gauge("x")
        for v in (3, 9, 1):
            g.set(v)
        assert (g.value, g.min_value, g.max_value) == (1, 1, 9)


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("lat", buckets=(10, 100))
        for v in (5, 50, 500):
            h.observe(v)
        assert h.counts == [1, 1, 1]  # <=10, <=100, overflow
        assert h.count == 3
        assert h.sum == 555
        assert h.min == 5 and h.max == 500
        assert h.mean == 185.0

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("x", buckets=(100, 10))

    def test_to_dict(self):
        h = Histogram("x", buckets=(1,))
        h.observe(1)
        d = h.to_dict()
        assert d["kind"] == "histogram"
        assert d["buckets"] == {"1": 1}
        assert d["overflow"] == 0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_family_children_by_label(self):
        reg = MetricsRegistry()
        fam = reg.counter_family("core_loads", label="core")
        fam.labels(0).inc(2)
        fam.labels(1).inc(3)
        assert fam.labels(0).value == 2
        assert dict(fam.items())[1].value == 3

    def test_introspection_and_dump(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.gauge_family("b", label="ch").labels(0).set(7)
        assert reg.names() == ["a", "b"]
        assert "a" in reg and len(reg) == 2
        dump = reg.to_dict()
        assert dump["a"]["value"] == 1
        assert dump["b"]["children"]["0"]["value"] == 7


class TestRunRegistry:
    def _run(self, mode):
        from repro.analysis.experiments import default_sim_config
        from repro.api import RunOptions, build_system
        from repro.core.registry import iter_schemes
        from repro.workloads.base import (WorkloadSpec, build_cached,
                                          seed_media_words)

        cfg = default_sim_config()
        trace, words = build_cached(
            "hashmap", cfg.mem, WorkloadSpec(threads=2, ops=20,
                                             elements=512, seed=2))
        scheme = next(i for i in iter_schemes() if i.has_persist_buffer)
        system = build_system(scheme.name, config=cfg, entries=8,
                              options=RunOptions(mode=mode))
        seed_media_words(system.nvmm_media, words)
        system.run(trace, finalize=False)
        return system

    def test_projects_stats_and_batch_counters(self):
        from repro.obs import run_registry

        system = self._run("columnar")
        reg = run_registry(system)
        assert reg.get("engine.batch.phases").value > 0
        assert reg.get("engine.batch.private_ops").value > 0
        assert reg.get("nvmm_writes").value == system.stats.nvmm_writes

    def test_analytical_runs_add_model_gauges(self):
        from repro.obs import run_registry

        system = self._run("analytical")
        reg = run_registry(system)
        assert "analytical.occupancy" in reg
        assert "analytical.drains" in reg
        # No interpretation happened, so the batch counters stay zero.
        assert reg.get("engine.batch.phases").value == 0
