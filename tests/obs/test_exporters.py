"""Exporter tests: JSONL round-trip, Chrome traces, and the invariant that
the event stream reconciles exactly with SimStats on a real run."""

import json

import pytest

from repro.analysis.experiments import default_sim_config
from repro.api import RunOptions, build_system
from repro.obs.bus import EventBus, EventRecorder
from repro.obs.events import (
    BbpbAlloc,
    DrainStart,
    StallBegin,
    StallEnd,
    WpqEnqueue,
    event_from_payload,
    event_to_payload,
)
from repro.obs.exporters import (
    event_counts,
    read_jsonl,
    stall_attribution,
    summarize_events,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.timeline import OccupancySampler
from repro.workloads.base import WorkloadSpec, build_cached, seed_media_words

SPEC = WorkloadSpec(threads=4, ops=60, elements=1024, seed=11)


@pytest.fixture(scope="module")
def observed_run():
    """One hashmap/bbb run with a small buffer, fully observed."""
    cfg = default_sim_config()
    trace, initial_words = build_cached("hashmap", cfg.mem, SPEC)
    bus = EventBus()
    recorder = EventRecorder(bus)
    sampler = OccupancySampler(bus)
    system = build_system("bbb", entries=8, config=cfg,
                          options=RunOptions(bus=bus))
    seed_media_words(system.nvmm_media, initial_words)
    system.run(trace, finalize=True)
    return recorder.events, system.stats, sampler


class TestPayloadRoundTrip:
    def test_every_event_type_round_trips(self):
        samples = [
            BbpbAlloc(cycle=5, core=1, addr=0x80, occupancy=3),
            DrainStart(cycle=9, core=0, addr=0x40, complete_at=40,
                       occupancy=2),
            WpqEnqueue(cycle=11, addr=0xC0, channel=1, accept_at=30,
                       backlog=19),
            StallBegin(cycle=12, core=2, cause="bbpb_full"),
        ]
        for event in samples:
            assert event_from_payload(event_to_payload(event)) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_payload({"kind": "bogus", "cycle": 1})

    def test_unexpected_field_rejected(self):
        payload = event_to_payload(StallEnd(cycle=3, core=0, cause="epoch"))
        payload["extra"] = 1
        with pytest.raises(ValueError, match="unexpected fields"):
            event_from_payload(payload)


class TestJsonl:
    def test_real_run_round_trips_losslessly(self, observed_run, tmp_path):
        events, _, _ = observed_run
        path = tmp_path / "events.jsonl"
        written = write_jsonl(events, str(path))
        assert written == len(events)
        assert read_jsonl(str(path)) == list(events)


class TestChromeTrace:
    def test_structure_and_ordering(self, observed_run, tmp_path):
        events, _, _ = observed_run
        path = tmp_path / "trace.json"
        entries = write_chrome_trace(events, str(path))
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == entries
        ts = [e.get("ts", 0) for e in loaded["traceEvents"]]
        assert ts == sorted(ts)
        phases = {e["ph"] for e in loaded["traceEvents"]}
        assert "M" in phases            # process-name metadata
        assert "X" in phases            # drain / wpq duration spans
        # Every drain span sits on the bbPB track with a non-negative dur.
        drains = [e for e in loaded["traceEvents"] if e.get("name") == "drain"]
        assert drains
        assert all(e["dur"] >= 0 and e["pid"] == 2 for e in drains)

    def test_empty_event_list_still_valid(self):
        trace = to_chrome_trace([])
        assert [e["ph"] for e in trace["traceEvents"]] == ["M", "M", "M"]


class TestSummaries:
    def test_summarize_lists_every_kind(self, observed_run):
        events, _, _ = observed_run
        out = summarize_events(events)
        for kind in event_counts(events):
            assert kind in out
        assert "total" in out


class TestReconciliation:
    """The acceptance bar: event counts equal the SimStats counters."""

    def test_bbpb_counters_match(self, observed_run):
        events, stats, _ = observed_run
        counts = event_counts(events)
        assert counts.get("bbpb_alloc", 0) == stats.bbpb_allocations
        assert counts.get("bbpb_coalesce", 0) == stats.bbpb_coalesces
        assert counts.get("bbpb_reject", 0) == stats.bbpb_rejections
        assert counts.get("drain_start", 0) == stats.bbpb_drains
        assert counts.get("forced_drain", 0) == stats.bbpb_forced_drains

    def test_wpq_drains_match_nvmm_writes(self, observed_run):
        events, stats, _ = observed_run
        assert event_counts(events).get("wpq_drain", 0) == stats.nvmm_writes

    def test_stall_intervals_match_stall_cycles(self, observed_run):
        events, stats, _ = observed_run
        stalls = stall_attribution(events)
        assert stalls.get("bbpb_full", 0) == stats.total_bbpb_stalls
        assert stalls.get("flush_fence", 0) == sum(
            c.stall_cycles_flush_fence for c in stats.core
        )

    def test_occupancy_never_exceeds_entries(self, observed_run):
        _, _, sampler = observed_run
        for core in sampler.bbpb_cores():
            values = [v for _, v in sampler.bbpb_series(core)]
            assert values and max(values) <= 8

    def test_sampler_registry_projection(self, observed_run):
        _, _, sampler = observed_run
        reg = sampler.to_registry()
        fam = reg.get("bbpb_occupancy")
        core0 = fam.labels(sampler.bbpb_cores()[0])
        assert core0.max_value <= 8
