"""The closed-form analytical mode (repro.analysis.analytical): tolerance
gate on the bench smoke grid, capability-driven calibration flags, and the
``mode="analytical"`` surface of ``build_system``/``System.run``."""

import pytest

from repro.analysis.analytical import (EXACT_FIELDS, TOLERANCE,
                                       analytical_estimate,
                                       validate_against_sim)
from repro.analysis.bench import run_smoke
from repro.analysis.experiments import default_sim_config
from repro.api import RunOptions, build_system
from repro.core.registry import iter_schemes
from repro.workloads.base import (WorkloadSpec, build_cached,
                                  seed_media_words)

SPEC = WorkloadSpec(threads=2, ops=30, elements=512, seed=5)


def test_smoke_grid_within_tolerance():
    """The CI gate: columnar == object fingerprints and analytical
    estimates inside the declared band on every smoke-grid cell."""
    report = run_smoke()
    assert report["ok"], report
    for cell in report["cells"]:
        assert cell["identical"], cell
        assert cell["analytical_ok"], cell


def test_tolerance_band_is_declared():
    assert set(TOLERANCE) == {"execution_cycles", "nvmm_writes"}
    assert all(0 < v < 1 for v in TOLERANCE.values())
    assert set(EXACT_FIELDS) == {
        "total_loads", "total_stores", "total_persisting_stores",
    }


def test_calibration_follows_capability_flags():
    """``calibrated`` comes from registry capability flags, never from
    scheme names: flush-ordered schemes are estimated uncalibrated."""
    cfg = default_sim_config()
    trace, _ = build_cached("hashmap", cfg.mem, SPEC)
    for info in iter_schemes():
        if not info.builtin:
            continue
        est = analytical_estimate(trace, info.name, cfg, entries=8)
        expected = ((info.stall_free_persists or info.has_persist_buffer)
                    and not info.pop_at_flush)
        assert est.calibrated == expected, info.name


def test_validate_reports_relative_errors():
    cfg = default_sim_config()
    trace, initial_words = build_cached("hashmap", cfg.mem, SPEC)
    scheme = next(i for i in iter_schemes() if i.has_persist_buffer)
    system = build_system(scheme.name, config=cfg, entries=8)
    seed_media_words(system.nvmm_media, initial_words)
    sim = system.run(trace, finalize=False)
    est = analytical_estimate(trace, scheme.name, cfg, entries=8)
    report = validate_against_sim(est, sim.stats)
    assert report["exact_ok"]
    assert set(report["errors"]) == set(TOLERANCE)
    assert report["ok"]


def test_analytical_mode_rejects_crash_runs():
    cfg = default_sim_config()
    trace, _ = build_cached("hashmap", cfg.mem, SPEC)
    scheme = next(i for i in iter_schemes() if i.builtin)
    system = build_system(scheme.name, config=cfg,
                          options=RunOptions(mode="analytical"))
    with pytest.raises(ValueError, match="crash"):
        system.run(trace, crash_at_op=10)


def test_unknown_mode_rejected():
    scheme = next(i for i in iter_schemes() if i.builtin)
    with pytest.raises(ValueError, match="mode"):
        build_system(scheme.name, options=RunOptions(mode="clairvoyant"))
