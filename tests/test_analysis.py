"""Tests for the analysis layer (repro.analysis)."""

import pytest

from repro.analysis import experiments as ex
from repro.analysis.tables import fmt_ratio, fmt_si, geomean, render_table
from repro.api import build_system
from repro.workloads.base import WORKLOAD_NAMES, WorkloadSpec

TINY = WorkloadSpec(threads=2, ops=10, elements=512, seed=1)


@pytest.fixture(scope="module")
def cfg():
    return ex.default_sim_config()


class TestTables:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [["x", 1], ["yyyy", 22]])
        lines = [l for l in out.splitlines() if "|" in l]
        assert len({line.index("|") for line in lines}) == 1  # aligned pipes

    def test_render_table_title(self):
        assert render_table(["a"], [["x"]], title="T").splitlines()[0] == "T"

    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([2, 2, 2]) == pytest.approx(2.0)

    def test_geomean_zero(self):
        assert geomean([0.0, 4.0]) == 0.0

    def test_geomean_errors(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([-1.0])

    def test_fmt_si(self):
        assert fmt_si(145e-6, "J") == "145.0 uJ"
        assert fmt_si(2.9e3, "g") == "2.9 kg"
        assert fmt_si(0, "J") == "0 J"

    def test_fmt_ratio(self):
        assert fmt_ratio(320.4) == "320x"
        assert fmt_ratio(1.27) == "1.27x"


class TestRunWorkload:
    def test_returns_populated_run(self, cfg):
        run = ex.run_workload("mutateNC", lambda: build_system("bbb", config=cfg), TINY, cfg)
        assert run.workload == "mutateNC"
        assert run.scheme == "bbb"
        assert run.execution_cycles > 0
        assert run.nvmm_writes >= run.nvmm_writes_raw >= 0

    def test_deterministic(self, cfg):
        a = ex.run_workload("hashmap", lambda: build_system("bbb", config=cfg), TINY, cfg)
        b = ex.run_workload("hashmap", lambda: build_system("bbb", config=cfg), TINY, cfg)
        assert a.execution_cycles == b.execution_cycles
        assert a.nvmm_writes == b.nvmm_writes


class TestSteadyStateAccounting:
    def test_bbb_obligations_are_resident_entries(self, cfg):
        system = build_system("bbb", config=cfg, entries=1024)  # big buffer: nothing drains
        from repro.sim.trace import TraceOp, ProgramTrace, ThreadTrace

        ops = [TraceOp.store(cfg.mem.persistent_base + i * 64, i + 1) for i in range(5)]
        system.run(ProgramTrace([ThreadTrace(ops)]), finalize=False)
        assert system.stats.nvmm_writes == 0
        assert ex.steady_state_nvmm_writes(system) == 5

    def test_eadr_obligations_are_dirty_blocks(self, cfg):
        system = build_system("eadr", config=cfg)
        from repro.sim.trace import TraceOp, ProgramTrace, ThreadTrace

        ops = [TraceOp.store(cfg.mem.persistent_base + i * 64, i + 1) for i in range(5)]
        system.run(ProgramTrace([ThreadTrace(ops)]), finalize=False)
        assert ex.steady_state_nvmm_writes(system) == 5

    def test_schemes_agree_on_total_durable_work(self, cfg):
        """For the same trace, steady-state writes of a huge-buffer BBB and
        eADR coincide (identical coalescing windows)."""
        from repro.sim.trace import TraceOp, ProgramTrace, ThreadTrace

        base = cfg.mem.persistent_base
        ops = []
        for i in range(60):
            ops.append(TraceOp.store(base + (i % 12) * 64 + (i % 8) * 8, i + 1))
        trace = ProgramTrace([ThreadTrace(ops)])
        sys_a = build_system("bbb", config=cfg, entries=4096)
        sys_b = build_system("eadr", config=cfg)
        sys_a.run(trace, finalize=False)
        sys_b.run(trace, finalize=False)
        assert ex.steady_state_nvmm_writes(sys_a) == ex.steady_state_nvmm_writes(sys_b)


class TestExperimentDrivers:
    def test_fig7_structure(self, cfg):
        result = ex.fig7(spec=TINY, config=cfg, workloads=("mutateNC",),
                         entries_variants=(8,))
        assert result.name == "fig7"
        assert result.runs > 0
        rows = result.data
        assert len(rows) == 1
        assert set(rows[0].exec_time) == {"BBB (8)", "Optimal (eADR)"}
        assert rows[0].exec_time["Optimal (eADR)"] == 1.0

    def test_fig7_averages(self, cfg):
        result = ex.fig7(spec=TINY, config=cfg,
                         workloads=("mutateNC", "swapNC"),
                         entries_variants=(8,))
        # fig7_averages accepts the ExperimentResult or the bare row list.
        exec_avg, writes_avg = ex.fig7_averages(result)
        assert exec_avg["Optimal (eADR)"] == 1.0
        assert writes_avg["Optimal (eADR)"] == 1.0
        assert ex.fig7_averages(result.data) == (exec_avg, writes_avg)

    def test_fig8_normalizes_to_first_size(self, cfg):
        points = ex.fig8(sizes=(1, 8), spec=TINY, config=cfg,
                         workloads=("mutateNC",)).data
        assert points[0].entries == 1
        assert points[0].exec_time == 1.0
        assert points[0].drains == 1.0

    def test_progress_callback_counts_every_run(self, cfg):
        seen = []
        result = ex.fig7(spec=TINY, config=cfg, workloads=("mutateNC",),
                         entries_variants=(8,),
                         progress=lambda done, total: seen.append((done, total)))
        assert seen == [(i + 1, result.runs) for i in range(result.runs)]

    def test_driver_registry_covers_the_sweeps(self):
        assert set(ex.EXPERIMENT_DRIVERS) == {
            "fig7", "fig8", "sec5c", "table10",
        }

    def test_table4_covers_all_workloads(self, cfg):
        rows = ex.table4(spec=TINY, config=cfg)
        assert {r[0] for r in rows} == set(WORKLOAD_NAMES)

    def test_processor_side_ratio_keys(self, cfg):
        ratios = ex.processor_side_write_ratio(
            spec=TINY, config=cfg, workloads=("mutateNC",)
        ).data
        assert set(ratios) == {"mutateNC"}

    def test_analytical_tables_are_cheap_and_stable(self):
        assert ex.table7() == ex.table7()
        assert ex.table8() == ex.table8()
        assert len(ex.table9()) == 8
        assert set(ex.table10((32,)).data) == {
            ("SuperCap", "M"), ("SuperCap", "S"),
            ("Li-thin", "M"), ("Li-thin", "S"),
        }
