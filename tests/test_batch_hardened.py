"""Fault tolerance of the batch runner: worker crashes, hung tasks,
retries, failure records, and checkpoint/resume.

Worker functions live at module level so the process pool can pickle them
by reference.  Crash/hang behaviour is keyed on marker files: the first
call finds no marker, creates it, and misbehaves; the retry finds the
marker and succeeds — so every scenario converges and the suite stays
fast."""

import os
import signal
import time

import pytest

from repro.analysis.batch import (
    BatchFailure,
    BatchItemError,
    BatchPolicy,
    RunSpec,
    run_batch,
    run_tasks,
)

#: Keep retry backoff negligible in tests.
FAST = dict(backoff_base=0.001, backoff_max=0.01)


def _triple(x):
    return x * 3


def _crash_once(marker, x):
    if not os.path.exists(marker):
        open(marker, "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return x * 3


def _hang_once(marker, x):
    if not os.path.exists(marker):
        open(marker, "w").close()
        time.sleep(300)
    return x * 3


def _flaky_once(marker, x):
    if not os.path.exists(marker):
        open(marker, "w").close()
        raise ValueError(f"transient {x}")
    return x * 3


def _boom(x):
    raise ValueError(f"boom {x}")


def _counted(counter, x):
    with open(counter, "a") as fh:
        fh.write(f"{x}\n")
    return x + 100


def _count_lines(path):
    if not os.path.exists(path):
        return 0
    with open(path) as fh:
        return sum(1 for _ in fh)


# ----------------------------------------------------------------------
# Worker death
# ----------------------------------------------------------------------

def test_killed_worker_is_retried_and_batch_recovers(tmp_path):
    marker = str(tmp_path / "crashed")
    tasks = [(_crash_once, (marker, 0), {})] + [
        (_triple, (i,), {}) for i in range(1, 5)
    ]
    results = run_tasks(tasks, jobs=2,
                        policy=BatchPolicy(retries=1, **FAST))
    assert results == [0, 3, 6, 9, 12]


def test_killed_worker_without_retries_reports_failure(tmp_path):
    marker = str(tmp_path / "crashed")
    tasks = [(_crash_once, (marker, 0), {})] + [
        (_triple, (i,), {}) for i in range(1, 4)
    ]
    results = run_tasks(
        tasks, jobs=2,
        policy=BatchPolicy(retries=0, on_error="return", **FAST),
    )
    assert isinstance(results[0], BatchFailure)
    assert results[0].kind == "worker-lost"
    assert results[0].item == tasks[0]
    assert results[1:] == [3, 6, 9]


# ----------------------------------------------------------------------
# Hung tasks
# ----------------------------------------------------------------------

def test_timeout_fires_and_retry_recovers(tmp_path):
    marker = str(tmp_path / "hung")
    tasks = [(_hang_once, (marker, 0), {})] + [
        (_triple, (i,), {}) for i in range(1, 4)
    ]
    start = time.monotonic()
    results = run_tasks(tasks, jobs=2,
                        policy=BatchPolicy(timeout=1.5, retries=1, **FAST))
    assert results == [0, 3, 6, 9]
    assert time.monotonic() - start < 60  # the 300s sleep was cut short


def test_timeout_without_retries_reports_failure(tmp_path):
    marker = str(tmp_path / "hung")
    tasks = [(_hang_once, (marker, 0), {})] + [
        (_triple, (i,), {}) for i in range(1, 3)
    ]
    results = run_tasks(
        tasks, jobs=2,
        policy=BatchPolicy(timeout=1.0, retries=0, on_error="return", **FAST),
    )
    assert isinstance(results[0], BatchFailure)
    assert results[0].kind == "timeout"
    assert "timeout" in results[0].error
    assert results[1:] == [3, 6]


def test_hung_plus_killed_matches_clean_serial_run(tmp_path):
    """The acceptance bar: a batch containing one task that hangs once and
    one whose worker is killed once completes with results identical to a
    clean serial run of the same items."""
    hang_marker = str(tmp_path / "hung")
    crash_marker = str(tmp_path / "crashed")
    tasks = (
        [(_triple, (0,), {})]
        + [(_hang_once, (hang_marker, 1), {})]
        + [(_crash_once, (crash_marker, 2), {})]
        + [(_triple, (i,), {}) for i in range(3, 6)]
    )
    expected = [x * 3 for x in range(6)]  # what a clean serial run yields
    results = run_tasks(tasks, jobs=2,
                        policy=BatchPolicy(timeout=2.0, retries=2, **FAST))
    assert results == expected


# ----------------------------------------------------------------------
# Application errors
# ----------------------------------------------------------------------

def test_worker_exception_carries_originating_task():
    tasks = [(_triple, (1,), {}), (_boom, (7,), {})]
    with pytest.raises(BatchItemError) as excinfo:
        run_tasks(tasks, jobs=1)
    assert excinfo.value.index == 1
    assert excinfo.value.item == tasks[1]
    assert isinstance(excinfo.value.cause, ValueError)
    assert "boom 7" in str(excinfo.value.cause)


def test_run_batch_error_carries_originating_spec():
    bad = RunSpec(workload="no-such-workload", scheme="bbb")
    with pytest.raises(BatchItemError) as excinfo:
        run_batch([bad], jobs=1)
    assert excinfo.value.item == bad


def test_on_error_return_replaces_result_with_failure_record():
    tasks = [(_triple, (1,), {}), (_boom, (7,), {}), (_triple, (2,), {})]
    results = run_tasks(
        tasks, jobs=1,
        policy=BatchPolicy(retries=1, on_error="return", **FAST),
    )
    assert results[0] == 3 and results[2] == 6
    failure = results[1]
    assert isinstance(failure, BatchFailure)
    assert failure.kind == "error"
    assert failure.attempts == 2  # first try + one retry
    assert "boom 7" in failure.error


@pytest.mark.parametrize("jobs", [1, 2])
def test_transient_error_recovers_within_retry_budget(tmp_path, jobs):
    marker = str(tmp_path / f"flaky-{jobs}")
    tasks = [(_flaky_once, (marker, 5), {})] + [
        (_triple, (i,), {}) for i in range(2)
    ]
    results = run_tasks(tasks, jobs=jobs,
                        policy=BatchPolicy(retries=1, **FAST))
    assert results == [15, 0, 3]


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------

def test_checkpoint_resume_skips_completed_work(tmp_path):
    counter = str(tmp_path / "calls")
    checkpoint = str(tmp_path / "batch.ckpt")
    tasks = [(_counted, (counter, i), {}) for i in range(5)]
    policy = BatchPolicy(checkpoint=checkpoint, **FAST)
    first = run_tasks(tasks, jobs=1, policy=policy)
    assert first == [100, 101, 102, 103, 104]
    assert _count_lines(counter) == 5
    # Resume: every item comes from the checkpoint, nothing re-executes.
    second = run_tasks(tasks, jobs=1, policy=policy)
    assert second == first
    assert _count_lines(counter) == 5


def test_checkpoint_torn_tail_recomputes_only_the_torn_item(tmp_path):
    counter = str(tmp_path / "calls")
    checkpoint = str(tmp_path / "batch.ckpt")
    tasks = [(_counted, (counter, i), {}) for i in range(4)]
    policy = BatchPolicy(checkpoint=checkpoint, **FAST)
    first = run_tasks(tasks, jobs=1, policy=policy)
    assert _count_lines(counter) == 4
    # Simulate a crash mid-append: chop the last record line in half.
    with open(checkpoint) as fh:
        content = fh.read()
    with open(checkpoint, "w") as fh:
        fh.write(content[: len(content) - len(content.splitlines()[-1]) // 2 - 1])
    second = run_tasks(tasks, jobs=1, policy=policy)
    assert second == first
    assert _count_lines(counter) == 5  # exactly the torn item re-ran


def test_checkpoint_from_different_batch_is_ignored(tmp_path):
    counter = str(tmp_path / "calls")
    checkpoint = str(tmp_path / "batch.ckpt")
    policy = BatchPolicy(checkpoint=checkpoint, **FAST)
    run_tasks([(_counted, (counter, 1), {})], jobs=1, policy=policy)
    assert _count_lines(counter) == 1
    # A different item list must not resume from the stale file.
    other = run_tasks([(_counted, (counter, 9), {})], jobs=1, policy=policy)
    assert other == [109]
    assert _count_lines(counter) == 2


def test_checkpoint_roundtrip_is_deterministic_across_jobs(tmp_path):
    counter = str(tmp_path / "calls")
    tasks = [(_counted, (counter, i), {}) for i in range(6)]
    plain = run_tasks(tasks, jobs=1)
    resumed = run_tasks(
        tasks, jobs=2,
        policy=BatchPolicy(checkpoint=str(tmp_path / "b.ckpt"), **FAST),
    )
    assert resumed == plain


# ----------------------------------------------------------------------
# Policy validation
# ----------------------------------------------------------------------

def test_policy_rejects_bad_values():
    with pytest.raises(ValueError):
        BatchPolicy(on_error="ignore")
    with pytest.raises(ValueError):
        BatchPolicy(retries=-1)
    with pytest.raises(ValueError):
        BatchPolicy(timeout=0)
    with pytest.raises(ValueError):
        BatchPolicy(max_pool_restarts=-1)
