"""Fault-campaign driver: classification, report schema, determinism, and
the headline zero-silent-corruption property for the battery domain."""

import json

from repro.analysis.batch import BatchPolicy
from repro.core.recovery import Outcome
from repro.fault.campaign import (
    CAMPAIGN_SCHEMA,
    FaultUnit,
    canonical_plans,
    execute_fault_unit,
    run_campaign,
    write_report,
)
from repro.fault.plan import (
    BATTERY_DOMAIN_SITES,
    FaultPlan,
    FaultSpec,
    SITE_BATTERY,
    SITE_FORCED_DRAIN,
    random_plan,
)
from repro.workloads.base import WorkloadSpec

SPEC = WorkloadSpec(threads=2, ops=24, elements=128, seed=5)


def test_canonical_plans_cover_every_site_fault_pair():
    covered = {(f.site, f.fault) for p in canonical_plans() for f in p.faults}
    from repro.fault.plan import SITE_FAULTS

    expected = {(s, f) for s, faults in SITE_FAULTS.items() for f in faults}
    assert covered == expected


def test_unit_battery_exhaustion_on_bbb_detected_or_consistent():
    unit = FaultUnit(
        scheme="bbb", workload="hashmap", spec=SPEC, crash_at=30,
        plan=FaultPlan(faults=(
            FaultSpec(site=SITE_BATTERY, fault="exhaustion",
                      params=(("blocks", 1),)),
        )),
    )
    res = execute_fault_unit(unit)
    assert res["baseline_consistent"]
    assert res["outcome"] in (
        Outcome.CONSISTENT.value, Outcome.DETECTED_INCONSISTENT.value
    )
    assert res["battery_domain"]


def test_unit_dropped_forced_drains_are_absorbed():
    """The design property a dropped forced-drain demonstrates: the entry
    stays battery-backed in the bbPB, so nothing is lost."""
    unit = FaultUnit(
        scheme="bbb", workload="hashmap", spec=SPEC, crash_at=40,
        plan=FaultPlan(faults=(
            FaultSpec(site=SITE_FORCED_DRAIN, fault="drop", count=0),
        )),
    )
    res = execute_fault_unit(unit)
    assert res["outcome"] == Outcome.CONSISTENT.value


def test_small_campaign_report_schema_and_no_battery_silence(tmp_path):
    plans = [
        FaultPlan(faults=(
            FaultSpec(site=SITE_BATTERY, fault="exhaustion",
                      params=(("blocks", 2),)),
        ), label="exhaust"),
        random_plan(3, sites=BATTERY_DOMAIN_SITES),
    ]
    report = run_campaign(
        ["bbb", "eadr", "none"], ["hashmap"], plans, SPEC,
        seed=9, jobs=1,
    )
    assert report["schema"] == CAMPAIGN_SCHEMA
    assert len(report["units"]) == 3 * 1 * 2
    assert sum(report["summary"].values()) == len(report["units"])
    assert set(report["summary"]) == {o.value for o in Outcome}
    assert report["battery_domain"]["silent_corruption"] == 0
    for unit in report["units"]:
        assert {"scheme", "workload", "crash_at", "plan", "outcome",
                "injected", "detected"} <= set(unit)
    # The report is written atomically and parses back identically.
    path = write_report(report, str(tmp_path / "faults.json"))
    with open(path) as fh:
        assert json.load(fh) == report


def test_campaign_deterministic_in_seed_and_jobs():
    plans = [random_plan(11, sites=BATTERY_DOMAIN_SITES)]
    kw = dict(spec=SPEC, seed=21, crashes_per_cell=2)
    serial = run_campaign(["bbb"], ["hashmap"], plans, jobs=1, **kw)
    parallel = run_campaign(["bbb"], ["hashmap"], plans, jobs=2, **kw)
    assert serial == parallel
    reseeded = run_campaign(["bbb"], ["hashmap"], plans, jobs=1,
                            spec=SPEC, seed=22, crashes_per_cell=2)
    assert [u["crash_at"] for u in reseeded["units"]] != \
        [u["crash_at"] for u in serial["units"]]


def test_campaign_through_hardened_policy():
    plans = [canonical_plans()[0]]
    report = run_campaign(
        ["bbb"], ["hashmap"], plans, SPEC,
        seed=1, jobs=2, policy=BatchPolicy(retries=1, timeout=120),
    )
    assert sum(report["summary"].values()) == 1
