"""Per-site injector behaviour and end-to-end fault semantics on a live
system."""

from repro.api import RunOptions, build_system
from repro.core.recovery import (
    Outcome,
    check_exact_durability,
    classify_outcome,
)
from repro.fault.injector import NULL_INJECTOR, FaultInjector
from repro.fault.plan import (
    FaultPlan,
    FaultSpec,
    SITE_BATTERY,
    SITE_BBPB_ENTRY,
    SITE_FORCED_DRAIN,
    SITE_NVMM_WRITE,
)
from repro.mem.block import BlockData
from repro.mem.coherence import DrainMessageChannel
from repro.mem.memctrl import NVMMController, WPQ_WRITE_MAX_RETRIES
from repro.obs.bus import EventBus, EventRecorder
from repro.sim.config import SystemConfig
from repro.sim.stats import SimStats
from repro.sim.trace import ProgramTrace, ThreadTrace, TraceOp

CFG = SystemConfig(num_cores=2).scaled_for_testing()


def _store_trace(num_blocks=12, stores_per_block=1):
    base = CFG.mem.persistent_base
    ops = [
        TraceOp.store(base + b * 64, 0x1000 + b * 8 + s)
        for b in range(num_blocks)
        for s in range(stores_per_block)
    ]
    return ProgramTrace([ThreadTrace(ops)])


def _block_data(value=0xDEADBEEF):
    data = BlockData()
    data.write_word(0, value, 4)
    return data


# ----------------------------------------------------------------------
# Site: battery.crash_drain
# ----------------------------------------------------------------------

def test_battery_budget_and_brownout_detection():
    plan = FaultPlan(faults=(
        FaultSpec(site=SITE_BATTERY, fault="exhaustion",
                  params=(("blocks", 2),)),
    ))
    injector = FaultInjector(plan)
    injector.begin_crash_drain(total_units=5, now=100)
    draws = [injector.battery_allows(100) for _ in range(5)]
    assert draws == [True, True, False, False, False]
    assert injector.battery.drained == 2
    assert injector.battery.lost == 3
    # Injection recorded once (first failed draw), detected via brown-out.
    assert [r.fault for r in injector.injected] == ["exhaustion"]
    assert [r.fault for r in injector.detected] == ["exhaustion"]


def test_battery_fraction_budget():
    plan = FaultPlan(faults=(
        FaultSpec(site=SITE_BATTERY, fault="exhaustion",
                  params=(("fraction", 0.5),)),
    ))
    injector = FaultInjector(plan)
    injector.begin_crash_drain(total_units=8, now=0)
    assert injector.battery.capacity_units == 4


def test_battery_without_fault_is_unlimited():
    injector = FaultInjector(FaultPlan())
    injector.begin_crash_drain(total_units=3, now=0)
    assert all(injector.battery_allows(0) for _ in range(100))
    assert not injector.injected


def test_brownout_disabled_is_undetected():
    plan = FaultPlan(faults=(
        FaultSpec(site=SITE_BATTERY, fault="exhaustion",
                  params=(("blocks", 0), ("brownout", False))),
    ))
    injector = FaultInjector(plan)
    injector.begin_crash_drain(total_units=2, now=0)
    assert not injector.battery_allows(0)
    assert injector.injected_count == 1
    assert injector.detected_count == 0


# ----------------------------------------------------------------------
# Site: nvmm.write (via the controller)
# ----------------------------------------------------------------------

def _controller(plan):
    injector = FaultInjector(plan)
    ctrl = NVMMController(CFG.mem, SimStats(num_cores=1), injector=injector)
    return ctrl, injector


def test_torn_write_detected_by_ecc_and_healed_by_rewrite():
    baddr = CFG.mem.persistent_base
    plan = FaultPlan(faults=(
        FaultSpec(site=SITE_NVMM_WRITE, fault="torn",
                  params=(("keep_bytes", 2),)),
    ))
    ctrl, injector = _controller(plan)
    data = _block_data(0x11223344)
    ctrl.write(baddr, data, now=0)
    assert baddr in ctrl.media.torn_blocks
    got = ctrl.media.peek_block(baddr)
    assert got.read(0) == 0x44 and got.read(1) == 0x33  # kept prefix
    assert got.read(2) == 0 and got.read(3) == 0        # torn tail
    assert [r.fault for r in injector.detected] == ["torn"]
    # A later complete write of the row re-encodes its ECC.
    ctrl.write(baddr, data, now=100)
    assert baddr not in ctrl.media.torn_blocks
    assert ctrl.media.peek_block(baddr).read(3) == 0x11


def test_transient_failures_within_retry_budget_succeed():
    baddr = CFG.mem.persistent_base
    plan = FaultPlan(faults=(
        FaultSpec(site=SITE_NVMM_WRITE, fault="transient",
                  params=(("failures", 2),)),
    ))
    ctrl, injector = _controller(plan)
    clean_done = NVMMController(CFG.mem, SimStats(num_cores=1)).write(
        baddr, _block_data(), now=0
    )
    done = ctrl.write(baddr, _block_data(0xABCD), now=0)
    # Each retry re-occupies the write port.
    assert done == clean_done + 2 * CFG.mem.wpq_accept_cycles
    assert ctrl.media.peek_block(baddr).read(0) == 0xCD  # write landed
    assert injector.injected_count == 1
    assert injector.detected_count == 0  # absorbed, no machine check


def test_transient_exhausting_retries_drops_write_with_machine_check():
    baddr = CFG.mem.persistent_base
    plan = FaultPlan(faults=(
        FaultSpec(site=SITE_NVMM_WRITE, fault="transient",
                  params=(("failures", WPQ_WRITE_MAX_RETRIES + 2),)),
    ))
    ctrl, injector = _controller(plan)
    ctrl.write(baddr, _block_data(0xABCD), now=0)
    assert ctrl.media.peek_block(baddr).read(0) == 0  # write never landed
    assert [r.fault for r in injector.detected] == ["transient"]
    assert "machine check" in injector.detected[0].detail


def test_nth_selects_the_target_write():
    b0 = CFG.mem.persistent_base
    plan = FaultPlan(faults=(
        FaultSpec(site=SITE_NVMM_WRITE, fault="torn", nth=2,
                  params=(("keep_bytes", 1),)),
    ))
    ctrl, _ = _controller(plan)
    ctrl.write(b0, _block_data(), now=0)
    ctrl.write(b0 + 64, _block_data(), now=0)
    ctrl.write(b0 + 128, _block_data(), now=0)
    assert ctrl.media.torn_blocks == {b0 + 64}


# ----------------------------------------------------------------------
# Site: coherence.forced_drain
# ----------------------------------------------------------------------

class _FakeBuffer:
    core_id = 3

    def __init__(self):
        self.drained = []

    def force_drain(self, block_addr, now):
        self.drained.append(block_addr)
        return now + 5


def test_drain_channel_drop_keeps_entry_resident():
    plan = FaultPlan(faults=(
        FaultSpec(site=SITE_FORCED_DRAIN, fault="drop"),
    ))
    injector = FaultInjector(plan)
    channel = DrainMessageChannel(injector)
    buf = _FakeBuffer()
    delivered, _ = channel.deliver(buf, 0x1000, now=10)
    assert not delivered and buf.drained == []
    assert channel.dropped == 1
    # The single-shot fault has passed: the next message goes through.
    delivered, done = channel.deliver(buf, 0x1040, now=20)
    assert delivered and buf.drained == [0x1040] and done == 25


def test_drain_channel_delay_postpones_delivery():
    plan = FaultPlan(faults=(
        FaultSpec(site=SITE_FORCED_DRAIN, fault="delay",
                  params=(("cycles", 30),)),
    ))
    channel = DrainMessageChannel(FaultInjector(plan))
    buf = _FakeBuffer()
    delivered, done = channel.deliver(buf, 0x1000, now=10)
    assert delivered and done == 10 + 30 + 5
    assert channel.delayed == 1


# ----------------------------------------------------------------------
# Site: bbpb.entry
# ----------------------------------------------------------------------

def test_bbpb_corruption_caught_by_parity_drops_entry():
    plan = FaultPlan(faults=(
        FaultSpec(site=SITE_BBPB_ENTRY, fault="corrupt",
                  params=(("bit", 4),)),
    ))
    injector = FaultInjector(plan)
    out, corrupted = injector.on_bbpb_crash_entry(0, 0x2000, _block_data(), 0)
    assert corrupted and out is None  # detected loss: entry discarded
    assert [r.fault for r in injector.detected] == ["corrupt"]


def test_bbpb_corruption_without_parity_flips_one_bit():
    plan = FaultPlan(faults=(
        FaultSpec(site=SITE_BBPB_ENTRY, fault="corrupt",
                  params=(("bit", 4), ("parity", False))),
    ))
    injector = FaultInjector(plan)
    data = _block_data()
    out, corrupted = injector.on_bbpb_crash_entry(0, 0x2000, data, 0)
    assert corrupted and out is not None
    diffs = [
        off for off in data.bytes if out.read(off) != data.read(off)
    ]
    assert len(diffs) == 1
    assert bin(out.read(diffs[0]) ^ data.read(diffs[0])).count("1") == 1
    assert injector.detected_count == 0  # silent without parity


# ----------------------------------------------------------------------
# End-to-end: faults on a live system
# ----------------------------------------------------------------------

def test_battery_exhaustion_mid_drain_is_detected_inconsistent():
    trace = _store_trace(num_blocks=10)
    plan = FaultPlan(faults=(
        FaultSpec(site=SITE_BATTERY, fault="exhaustion",
                  params=(("blocks", 1),)),
    ))
    injector = FaultInjector(plan)
    system = build_system("bbb", config=CFG, entries=32,
                          options=RunOptions(fault_injector=injector))
    result = system.run(trace, crash_at_op=trace.total_ops())
    contract = check_exact_durability(
        system.nvmm_media, result.committed_persists
    )
    assert not contract.consistent  # entries beyond the budget were lost
    assert injector.detected_count >= 1
    outcome = classify_outcome(contract, injector.detected_count > 0)
    assert outcome is Outcome.DETECTED_INCONSISTENT


def test_brownout_disabled_battery_loss_is_silent():
    """The taxonomy's worst case is reachable — but only by explicitly
    disabling a detection channel, modelling cheaper hardware."""
    trace = _store_trace(num_blocks=10)
    plan = FaultPlan(faults=(
        FaultSpec(site=SITE_BATTERY, fault="exhaustion",
                  params=(("blocks", 1), ("brownout", False))),
    ))
    injector = FaultInjector(plan)
    system = build_system("bbb", config=CFG, entries=32,
                          options=RunOptions(fault_injector=injector))
    result = system.run(trace, crash_at_op=trace.total_ops())
    contract = check_exact_durability(
        system.nvmm_media, result.committed_persists
    )
    assert not contract.consistent
    outcome = classify_outcome(contract, injector.detected_count > 0)
    assert outcome is Outcome.SILENT_CORRUPTION


def test_enabled_injector_with_empty_plan_is_bit_identical():
    """An attached injector whose plan is empty must not perturb the run:
    same stats, same durable image as the NULL_INJECTOR default."""
    trace = _store_trace(num_blocks=8, stores_per_block=2)

    def run(injector):
        system = build_system("bbb", config=CFG, entries=8,
                              options=RunOptions(fault_injector=injector))
        result = system.run(trace, crash_at_op=trace.total_ops())
        return result.stats.to_dict(), system.nvmm_media

    base_stats, base_media = run(NULL_INJECTOR)
    fault_stats, fault_media = run(FaultInjector(FaultPlan()))
    assert fault_stats == base_stats
    base_blocks = {a: base_media.peek_block(a).bytes
                   for a in range(CFG.mem.persistent_base,
                                  CFG.mem.persistent_base + 16 * 64, 64)}
    fault_blocks = {a: fault_media.peek_block(a).bytes
                    for a in base_blocks}
    assert fault_blocks == base_blocks


def test_fault_events_reach_the_system_bus():
    trace = _store_trace(num_blocks=6)
    plan = FaultPlan(faults=(
        FaultSpec(site=SITE_BATTERY, fault="exhaustion",
                  params=(("blocks", 1),)),
    ))
    injector = FaultInjector(plan)
    bus = EventBus()
    recorder = EventRecorder(bus)
    system = build_system("bbb", config=CFG, entries=32,
                          options=RunOptions(bus=bus, fault_injector=injector))
    system.run(trace, crash_at_op=trace.total_ops())
    kinds = {e.kind for e in recorder.events}
    assert "fault_injected" in kinds
    assert "fault_detected" in kinds
    assert "battery_depleted" in kinds
