"""Fault-plan data model: validation, firing windows, round-trips, seeded
generation."""

import pytest

from repro.fault.plan import (
    BATTERY_DOMAIN_SITES,
    FaultPlan,
    FaultSpec,
    SITE_BATTERY,
    SITE_BBPB_ENTRY,
    SITE_FAULTS,
    SITE_FORCED_DRAIN,
    SITE_NVMM_WRITE,
    SITES,
    random_plan,
)


def test_every_site_declares_faults():
    assert set(SITE_FAULTS) == set(SITES)
    assert all(SITE_FAULTS[s] for s in SITES)


def test_battery_domain_excludes_media():
    assert SITE_NVMM_WRITE not in BATTERY_DOMAIN_SITES
    assert SITE_BATTERY in BATTERY_DOMAIN_SITES
    assert SITE_FORCED_DRAIN in BATTERY_DOMAIN_SITES
    assert SITE_BBPB_ENTRY in BATTERY_DOMAIN_SITES


def test_spec_rejects_unknown_site_and_fault():
    with pytest.raises(ValueError):
        FaultSpec(site="llc.evict", fault="drop")
    with pytest.raises(ValueError):
        FaultSpec(site=SITE_BATTERY, fault="torn")
    with pytest.raises(ValueError):
        FaultSpec(site=SITE_NVMM_WRITE, fault="torn", nth=0)
    with pytest.raises(ValueError):
        FaultSpec(site=SITE_NVMM_WRITE, fault="torn", count=-1)


def test_active_window_semantics():
    spec = FaultSpec(site=SITE_NVMM_WRITE, fault="torn", nth=3, count=2)
    assert [spec.active_at(v) for v in range(1, 7)] == [
        False, False, True, True, False, False,
    ]
    forever = FaultSpec(site=SITE_FORCED_DRAIN, fault="drop", nth=2, count=0)
    assert not forever.active_at(1)
    assert all(forever.active_at(v) for v in range(2, 50))


def test_param_lookup_with_default():
    spec = FaultSpec(site=SITE_NVMM_WRITE, fault="torn",
                     params=(("keep_bytes", 8),))
    assert spec.param("keep_bytes") == 8
    assert spec.param("ecc", True) is True


def test_plan_round_trips_through_dict():
    plan = FaultPlan(
        faults=(
            FaultSpec(site=SITE_BATTERY, fault="exhaustion",
                      params=(("blocks", 3),)),
            FaultSpec(site=SITE_BBPB_ENTRY, fault="corrupt", nth=2,
                      params=(("bit", 17), ("parity", False))),
        ),
        seed=99,
        label="round-trip",
    )
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_plan_site_queries():
    plan = FaultPlan(faults=(
        FaultSpec(site=SITE_FORCED_DRAIN, fault="drop"),
        FaultSpec(site=SITE_FORCED_DRAIN, fault="delay", nth=5),
        FaultSpec(site=SITE_BATTERY, fault="exhaustion"),
    ))
    assert plan.sites() == (SITE_BATTERY, SITE_FORCED_DRAIN)
    assert len(plan.for_site(SITE_FORCED_DRAIN)) == 2
    assert plan.touches_battery_domain_only()
    mixed = FaultPlan(faults=(
        FaultSpec(site=SITE_NVMM_WRITE, fault="torn"),
    ))
    assert not mixed.touches_battery_domain_only()


def test_empty_plan_is_falsy_and_valid():
    plan = FaultPlan()
    assert not plan
    assert plan.sites() == ()
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_random_plan_deterministic_in_seed():
    assert random_plan(42) == random_plan(42)
    assert random_plan(42) != random_plan(43)


def test_random_plan_respects_site_restriction():
    for seed in range(30):
        plan = random_plan(seed, sites=BATTERY_DOMAIN_SITES)
        assert plan.faults
        assert plan.touches_battery_domain_only()


def test_random_plan_never_disables_detection_channels():
    """Generated plans model faults, not cheaper hardware: the detection
    channels (ecc/parity/brownout) stay at their defaults, which is what
    makes the no-silent-corruption property hold by construction."""
    for seed in range(50):
        for spec in random_plan(seed).faults:
            names = {k for k, _ in spec.params}
            assert not names & {"ecc", "parity", "brownout"}
