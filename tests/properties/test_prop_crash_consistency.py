"""The headline property: under schemes that close the PoV/PoP gap, *every*
random program crashed at *every* random point recovers to the exact
committed state; and the BBB design invariants hold at arbitrary points of
arbitrary programs."""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.invariants import check_all
from repro.core.recovery import check_exact_durability
from repro.sim.config import ConsistencyModel, SystemConfig
from repro.api import RunOptions, build_system
from repro.sim.trace import ProgramTrace, ThreadTrace, TraceOp

CFG = SystemConfig(num_cores=2).scaled_for_testing()

# Random programs: per-thread op streams over a small persistent footprint
# (16 blocks) so cross-core conflicts and evictions are common.
op_strategy = st.tuples(
    st.sampled_from(["load", "store", "compute"]),
    st.integers(min_value=0, max_value=15),   # block index
    st.integers(min_value=0, max_value=56),   # offset (8-aligned below)
    st.integers(min_value=1, max_value=1 << 30),
)


def to_trace_op(kind, block, offset, value):
    addr = CFG.mem.persistent_base + block * 64 + (offset & ~7)
    if kind == "load":
        return TraceOp.load(addr)
    if kind == "store":
        return TraceOp.store(addr, value)
    return TraceOp.compute(value % 20)


thread_strategy = st.lists(op_strategy, min_size=1, max_size=30)
program_strategy = st.lists(thread_strategy, min_size=1, max_size=2)


def build_program(threads):
    return ProgramTrace(
        [ThreadTrace([to_trace_op(*op) for op in ops]) for ops in threads]
    )


@settings(max_examples=40, deadline=None)
@given(program_strategy, st.data())
def test_bbb_crash_recovers_exact_committed_state(threads, data):
    trace = build_program(threads)
    crash_at = data.draw(
        st.integers(min_value=1, max_value=trace.total_ops()), label="crash_at"
    )
    entries = data.draw(st.sampled_from([1, 2, 8, 32]), label="entries")
    system = build_system("bbb", config=CFG, entries=entries)
    result = system.run(trace, crash_at_op=crash_at)
    check = check_exact_durability(system.nvmm_media, result.committed_persists)
    assert check, check.violations


@settings(max_examples=25, deadline=None)
@given(program_strategy, st.data())
def test_processor_side_bbb_also_exact(threads, data):
    trace = build_program(threads)
    crash_at = data.draw(
        st.integers(min_value=1, max_value=trace.total_ops()), label="crash_at"
    )
    system = build_system("bbb-proc", config=CFG, entries=8)
    result = system.run(trace, crash_at_op=crash_at)
    check = check_exact_durability(system.nvmm_media, result.committed_persists)
    assert check, check.violations


@settings(max_examples=25, deadline=None)
@given(program_strategy, st.data())
def test_eadr_crash_recovers_exact_committed_state(threads, data):
    trace = build_program(threads)
    crash_at = data.draw(
        st.integers(min_value=1, max_value=trace.total_ops()), label="crash_at"
    )
    system = build_system("eadr", config=CFG)
    result = system.run(trace, crash_at_op=crash_at)
    check = check_exact_durability(system.nvmm_media, result.committed_persists)
    assert check, check.violations


@settings(max_examples=15, deadline=None)
@given(program_strategy, st.data())
def test_pmem_strict_crash_recovers_exact_committed_state(threads, data):
    trace = build_program(threads)
    crash_at = data.draw(
        st.integers(min_value=1, max_value=trace.total_ops()), label="crash_at"
    )
    system = build_system("pmem", config=CFG)
    result = system.run(trace, crash_at_op=crash_at)
    check = check_exact_durability(system.nvmm_media, result.committed_persists)
    assert check, check.violations


@settings(max_examples=30, deadline=None)
@given(program_strategy, st.data())
def test_bbb_invariants_hold_at_random_points(threads, data):
    """Invariants 3/4 audited on the live system mid-execution."""
    trace = build_program(threads)
    stop_at = data.draw(
        st.integers(min_value=1, max_value=trace.total_ops()), label="stop_at"
    )
    entries = data.draw(st.sampled_from([2, 8, 32]), label="entries")
    system = build_system("bbb", config=CFG, entries=entries)
    # Run without crashing: stop the engine at an op boundary by splitting
    # the run into a crash-free prefix (crash_at stops execution but we
    # audit *before* drain by not calling crash_drain — use a plain
    # truncated trace instead).
    truncated = []
    remaining = stop_at
    for thread in trace.threads:
        take = min(len(thread), remaining)
        truncated.append(ThreadTrace(list(thread)[:take]))
        remaining -= take
    system.run(ProgramTrace(truncated), finalize=False)
    check_all(system)


def build_disjoint_program(threads):
    """Per-thread block footprints made disjoint (shift by 16 blocks per
    thread): under relaxed consistency, committed-order replay is only the
    golden state when cross-core same-block conflicts cannot occur."""
    built = []
    for tid, ops in enumerate(threads):
        shifted = [(k, b + 16 * tid, o, v) for (k, b, o, v) in ops]
        built.append(ThreadTrace([to_trace_op(*op) for op in shifted]))
    return ProgramTrace(built)


@settings(max_examples=20, deadline=None)
@given(program_strategy, st.data())
def test_relaxed_bbb_with_battery_sb_exact(threads, data):
    cfg = dataclasses.replace(CFG, consistency=ConsistencyModel.RELAXED)
    trace = build_disjoint_program(threads)
    crash_at = data.draw(
        st.integers(min_value=1, max_value=trace.total_ops()), label="crash_at"
    )
    seed = data.draw(st.integers(min_value=0, max_value=99), label="seed")
    system = build_system("bbb", config=cfg, entries=16,
                          options=RunOptions(reorder_seed=seed))
    result = system.run(trace, crash_at_op=crash_at)
    check = check_exact_durability(system.nvmm_media, result.committed_persists)
    assert check, check.violations
