"""Equivalence of the dict-indexed CacheArray with the linear-scan model.

The cache array originally kept each set as a list of frames and scanned it
linearly on every access; it now keeps a tag-indexed dict per set.  These
properties drive both a faithful reference reimplementation of the
linear-scan semantics and the real :class:`repro.mem.cache.CacheArray`
through identical randomized op sequences and require every observable
outcome to match: hit/miss per lookup, the victim chosen on insert and
reported by ``victim_for``, removals, occupancy, and the full resident
state (address, MESI state, dirtiness, LRU stamp).
"""

from typing import List, Optional

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.block import CacheBlock, E, I, M, S
from repro.mem.cache import CacheArray
from repro.sim.config import CacheConfig

#: Power-of-two sets (shift/mask indexing) and non-power-of-two sets
#: (modulo indexing): 8 sets x 2 ways and 6 sets x 2 ways.
CONFIGS = (
    CacheConfig(size_bytes=1024, assoc=2, block_size=64),
    CacheConfig(size_bytes=768, assoc=2, block_size=64),
)


class LinearScanCacheArray:
    """Reference model: each set is a list of frames, every operation is a
    linear scan.  Mirrors the original CacheArray semantics exactly,
    including the LRU stamping discipline (stamp on touching lookup and on
    insert, nothing else)."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets = {}
        self._use = 0

    def set_index(self, block_addr: int) -> int:
        return (block_addr // self.config.block_size) % self.config.num_sets

    def _set_for(self, block_addr: int) -> List[CacheBlock]:
        return self._sets.setdefault(self.set_index(block_addr), [])

    def lookup(self, block_addr: int, touch: bool = True) -> Optional[CacheBlock]:
        for blk in self._set_for(block_addr):
            if blk.addr == block_addr and blk.valid:
                if touch:
                    self._use += 1
                    blk.last_use = self._use
                return blk
        return None

    def victim_for(self, block_addr: int) -> Optional[CacheBlock]:
        frames = self._set_for(block_addr)
        if len(frames) < self.config.assoc:
            return None
        victim = None
        for blk in frames:
            if not blk.valid:
                return None
            if victim is None or blk.last_use < victim.last_use:
                victim = blk
        return victim

    def insert(self, block: CacheBlock) -> Optional[CacheBlock]:
        if not block.valid:
            raise ValueError("cannot insert an invalid block")
        frames = self._set_for(block.addr)
        for blk in frames:
            if blk.addr == block.addr and blk.valid:
                raise ValueError("already resident")
        self._use += 1
        block.last_use = self._use
        for i, blk in enumerate(frames):
            if not blk.valid:
                frames[i] = block
                return None
        if len(frames) < self.config.assoc:
            frames.append(block)
            return None
        victim = min(frames, key=lambda b: b.last_use)
        frames[frames.index(victim)] = block
        return victim

    def remove(self, block_addr: int) -> Optional[CacheBlock]:
        blk = self.lookup(block_addr, touch=False)
        if blk is not None:
            self._set_for(block_addr).remove(blk)
        return blk

    def blocks(self):
        for frames in self._sets.values():
            for blk in frames:
                if blk.valid:
                    yield blk


block_addrs = st.integers(min_value=0, max_value=63).map(lambda i: i * 64)
ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "lookup", "peek", "victim_for", "remove",
                         "invalidate"]),
        block_addrs,
        st.sampled_from([M, E, S]),
        st.booleans(),
    ),
    max_size=120,
)


def _resident_state(cache):
    """Everything observable about residency, as a comparable set."""
    return {
        (blk.addr, blk.state, blk.dirty, blk.persistent, blk.last_use)
        for blk in cache.blocks()
    }


def _addr(blk: Optional[CacheBlock]) -> Optional[int]:
    return None if blk is None else blk.addr


@settings(max_examples=200)
@given(st.sampled_from(CONFIGS), ops)
def test_dict_cache_matches_linear_scan_reference(config, op_list):
    real = CacheArray(config)
    ref = LinearScanCacheArray(config)
    for op, addr, state, dirty in op_list:
        if op == "insert":
            if real.contains(addr):
                continue
            got = real.insert(CacheBlock(addr, state=state, dirty=dirty))
            want = ref.insert(CacheBlock(addr, state=state, dirty=dirty))
            assert _addr(got) == _addr(want)
        elif op in ("lookup", "peek"):
            touch = op == "lookup"
            got = real.lookup(addr, touch=touch)
            want = ref.lookup(addr, touch=touch)
            assert (got is None) == (want is None)
            if got is not None:
                assert (got.addr, got.state, got.dirty, got.last_use) == (
                    want.addr, want.state, want.dirty, want.last_use
                )
        elif op == "victim_for":
            assert _addr(real.victim_for(addr)) == _addr(ref.victim_for(addr))
        elif op == "remove":
            assert _addr(real.remove(addr)) == _addr(ref.remove(addr))
        elif op == "invalidate":
            # Invalidation-in-place (what coherence does): the frame stays
            # allocated but becomes unobservable and reusable.
            got = real.lookup(addr, touch=False)
            want = ref.lookup(addr, touch=False)
            assert (got is None) == (want is None)
            if got is not None:
                got.invalidate()
                want.invalidate()
        assert _resident_state(real) == _resident_state(ref)
    assert real._use == ref._use


@settings(max_examples=100)
@given(st.sampled_from(CONFIGS), ops)
def test_set_index_matches_reference(config, op_list):
    real = CacheArray(config)
    ref = LinearScanCacheArray(config)
    for _, addr, _, _ in op_list:
        assert real.set_index(addr) == ref.set_index(addr)
