"""Property: BSP's crash guarantee is per-core prefix consistency.

Whatever a BSP system loses at a crash, what *persisted* is always a
program-order prefix per core (the ordered volatile buffer drains FIFO and
conflicts force prefix drains) — never a hole.  The exact-durability
property of BBB does NOT hold for BSP (buffered stores die), which the
second test demonstrates statistically.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recovery import check_exact_durability, check_prefix_consistency
from repro.sim.config import SystemConfig
from repro.api import build_system
from repro.sim.trace import ProgramTrace, ThreadTrace, TraceOp

CFG = SystemConfig(num_cores=2).scaled_for_testing()

# Write-once address streams (each block index used once per thread) keep
# the prefix checker fully determinate.
thread_strategy = st.lists(
    st.integers(min_value=1, max_value=1 << 30), min_size=1, max_size=30
)
program_strategy = st.lists(thread_strategy, min_size=1, max_size=2)


def build(threads):
    built = []
    for tid, values in enumerate(threads):
        ops = []
        for i, value in enumerate(values):
            addr = CFG.mem.persistent_base + (tid * 64 + i) * 64
            ops.append(TraceOp.store(addr, value))
        built.append(ThreadTrace(ops))
    return ProgramTrace(built)


@settings(max_examples=40, deadline=None)
@given(program_strategy, st.data())
def test_bsp_crash_state_is_a_prefix(threads, data):
    trace = build(threads)
    crash_at = data.draw(
        st.integers(min_value=1, max_value=trace.total_ops()), label="crash_at"
    )
    entries = data.draw(st.sampled_from([2, 4, 8, 32]), label="entries")
    system = build_system("bsp", config=CFG, entries=entries)
    result = system.run(trace, crash_at_op=crash_at)
    check = check_prefix_consistency(system.nvmm_media, result.committed_persists)
    assert check, check.violations


def test_bsp_does_lose_buffered_stores_somewhere():
    """Sanity that the prefix property is not vacuous: some crash point
    loses committed stores (unlike BBB)."""
    threads = [[i + 1 for i in range(20)]]
    trace = build(threads)
    lost_somewhere = False
    for crash_at in range(1, trace.total_ops() + 1):
        system = build_system("bsp", config=CFG, entries=8)
        result = system.run(trace, crash_at_op=crash_at)
        if not check_exact_durability(system.nvmm_media, result.committed_persists):
            lost_somewhere = True
            break
    assert lost_somewhere
