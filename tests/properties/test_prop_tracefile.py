"""Property test: trace file round-trips are lossless (repro.sim.tracefile)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.trace import OpKind, ProgramTrace, ThreadTrace, TraceOp
from repro.sim.tracefile import load_trace, save_trace

op_strategy = st.one_of(
    st.builds(TraceOp.load, st.integers(min_value=0, max_value=1 << 40),
              size=st.sampled_from([1, 2, 4, 8])),
    st.builds(
        TraceOp.store,
        st.integers(min_value=0, max_value=1 << 40),
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        size=st.sampled_from([1, 2, 4, 8]),
        tag=st.one_of(st.none(), st.text(min_size=1, max_size=10)),
    ),
    st.builds(TraceOp.flush, st.integers(min_value=0, max_value=1 << 40)),
    st.just(TraceOp.fence()),
    st.builds(TraceOp.compute, st.integers(min_value=0, max_value=10_000)),
    st.just(TraceOp.epoch()),
)

programs = st.lists(
    st.lists(op_strategy, max_size=30), min_size=1, max_size=4
)


@settings(max_examples=60, deadline=None)
@given(programs)
def test_roundtrip_lossless(tmp_path_factory, threads):
    path = tmp_path_factory.mktemp("traces") / "t.trace"
    trace = ProgramTrace([ThreadTrace(ops) for ops in threads])
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.num_threads == trace.num_threads
    for a_thread, b_thread in zip(trace.threads, loaded.threads):
        assert len(a_thread) == len(b_thread)
        for a, b in zip(a_thread, b_thread):
            assert (a.kind, a.addr, a.size, a.value, a.cycles, a.tag) == (
                b.kind, b.addr, b.size, b.value, b.cycles, b.tag
            )
