"""Persist-optimizer properties: for random small programs, the pass
pipeline is audit-clean under every registered scheme, preserves the
final durable image wherever the scheme's contract pins one down,
never turns a checker-consistent program inconsistent, and the
deliberately unsound ``opt-drop-epoch-fence`` mutant is caught by the
removal audit under every scheme whose contract does not subsume it."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.checker import CheckUnit, explore
from repro.core.registry import (
    ORDERING_EPOCH,
    ORDERING_FENCE,
    iter_schemes,
    scheme_info,
)
from repro.opt import (
    MUTANT_PIPELINE,
    Op,
    Program,
    audit_pipeline,
    instrument_naive,
    run_pipeline,
)
from repro.opt.verify import _run_to_completion
from repro.sim.config import SystemConfig
from repro.sim.trace import OpKind

CFG = SystemConfig(num_cores=2).scaled_for_testing()
SCHEMES = [info.name for info in iter_schemes()]

# Random programs over a small persistent footprint.  Stores repeat
# blocks (so coalescing and dead flushes occur), and explicit flush /
# fence / epoch ops appear alongside what instrument_naive adds, so
# every pass has material to work on.
op_strategy = st.tuples(
    st.sampled_from(["store", "store", "load", "compute", "flush",
                     "fence", "epoch"]),
    st.integers(min_value=0, max_value=5),    # block index
    st.integers(min_value=1, max_value=1 << 20),
)


def to_op(kind, block, value, thread=0):
    # Each thread gets its own disjoint block range: the durable-image
    # equivalence guarantee is for race-free programs, where elision
    # changes timing but cannot change which racing store wins a line.
    addr = CFG.mem.persistent_base + (thread * 8 + block) * 64
    if kind == "store":
        return Op(OpKind.STORE, addr=addr, value=value, origin="prop",
                  durable=True)
    if kind == "load":
        return Op(OpKind.LOAD, addr=addr, origin="prop", durable=True)
    if kind == "flush":
        return Op(OpKind.FLUSH, addr=addr, origin="prop", durable=True)
    if kind == "fence":
        return Op(OpKind.FENCE, origin="prop")
    if kind == "epoch":
        return Op(OpKind.EPOCH, origin="prop")
    return Op(OpKind.COMPUTE, cycles=value % 10, origin="prop")


program_strategy = st.lists(
    st.lists(op_strategy, min_size=1, max_size=8), min_size=1, max_size=2
)


def build_program(threads):
    return Program(
        threads=tuple(
            tuple(to_op(*op, thread=tid) for op in ops)
            for tid, ops in enumerate(threads)
        ),
        name="prop",
    )


@settings(max_examples=20, deadline=None)
@given(program_strategy)
def test_pipeline_is_audit_clean_under_every_scheme(threads):
    """Every removal the default pipeline makes on a random instrumented
    program is independently justified — contract-subsumed or redundant —
    under every registered scheme, and the survivors are an identity
    subsequence (the pipeline only ever deletes)."""
    naive = instrument_naive(build_program(threads))
    for scheme in SCHEMES:
        audit = audit_pipeline(naive, scheme, block_size=CFG.block_size)
        assert audit.ok, (scheme, audit.describe_violations())
        result = run_pipeline(naive, scheme, block_size=CFG.block_size)
        assert result.optimized.total_ops <= naive.total_ops


@settings(max_examples=8, deadline=None)
@given(program_strategy)
def test_exact_schemes_keep_the_final_durable_image(threads):
    """Under every exact-durability contract, the optimized program's
    final durable image fingerprints identically to the naive one —
    elision changed the instruction stream, not what survives a crash
    at completion."""
    naive = instrument_naive(build_program(threads))
    for scheme in SCHEMES:
        if not scheme_info(scheme).exact_durability:
            continue
        result = run_pipeline(naive, scheme, block_size=CFG.block_size)
        fp_naive = _run_to_completion(naive, scheme, 2, CFG)
        fp_opt = _run_to_completion(result.optimized, scheme, 2, CFG)
        assert fp_naive == fp_opt, scheme


@settings(max_examples=5, deadline=None)
@given(program_strategy, st.sampled_from(SCHEMES))
def test_optimizing_never_breaks_a_consistent_program(threads, scheme):
    """Exhaustive micro-step crash exploration: if the naive program is
    checker-consistent under a scheme, so is the optimized one (the gate
    is one-directional — naive pmem-style instrumentation may itself be
    inconsistent under epoch disciplines)."""
    naive = instrument_naive(build_program(threads))
    result = run_pipeline(naive, scheme, block_size=CFG.block_size)
    if result.optimized.total_ops == naive.total_ops:
        return
    verdicts, _, _ = explore(CheckUnit(
        scheme=scheme, entries=2, config=CFG, program=naive.to_payload(),
    ))
    if not all(v.consistent for v in verdicts):
        return
    opt_verdicts, _, _ = explore(CheckUnit(
        scheme=scheme, entries=2, config=CFG,
        program=result.optimized.to_payload(),
    ))
    bad = [v for v in opt_verdicts if not v.consistent]
    assert not bad, (scheme, bad[0].violations)


def test_mutant_drop_epoch_fence_is_caught():
    """The removal audit flags the opt-drop-epoch-fence mutant on a
    program with load-bearing fences and epochs under every scheme whose
    contract does not subsume both kinds — and accepts it where the
    contract makes the mutant accidentally sound."""
    base = CFG.mem.persistent_base
    ops = []
    for i in range(2):
        addr = base + 64 * (i + 1)
        ops.extend([
            Op(OpKind.STORE, addr=addr, value=i + 1, origin="probe",
               durable=True),
            Op(OpKind.FLUSH, addr=addr, origin="probe", durable=True),
            Op(OpKind.FENCE, origin="probe"),
            Op(OpKind.EPOCH, origin="probe"),
        ])
    probe = Program(threads=(tuple(ops),), name="probe")
    caught_somewhere = False
    for scheme in SCHEMES:
        info = scheme_info(scheme)
        audit = audit_pipeline(probe, scheme, passes=MUTANT_PIPELINE)
        expected_caught = not (info.subsumes_ordering(ORDERING_FENCE)
                               and info.subsumes_ordering(ORDERING_EPOCH))
        assert (not audit.ok) == expected_caught, (
            scheme, audit.describe_violations())
        caught_somewhere = caught_somewhere or not audit.ok
    assert caught_somewhere
