"""Property-based tests for the columnar trace representation
(repro.sim.coltrace): random ``ProgramTrace``s — including ops that
overflow the fixed-width columns and sub-word / overflowing store
payloads — must round-trip losslessly, and the precomputed store-byte
dicts must match byte-interpreted writes exactly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.coltrace import (ColumnarTrace, _store_byte_dicts,
                                columnar_of, program_of)
from repro.sim.trace import OpKind, ProgramTrace, ThreadTrace, TraceOp

addrs = st.integers(min_value=0, max_value=1 << 20)
# Values straddling the u64 column width: fits / barely fits / overflows.
values = st.one_of(
    st.integers(min_value=0, max_value=(1 << 64) - 1),
    st.just((1 << 64) - 1),
    st.integers(min_value=1 << 64, max_value=1 << 80),
)
sizes = st.sampled_from([1, 2, 4, 8])
tags = st.one_of(st.none(), st.sampled_from(["a", "update:1", ""]))


@st.composite
def trace_ops(draw):
    kind = draw(st.sampled_from(list(OpKind)))
    if kind is OpKind.COMPUTE:
        return TraceOp(kind, cycles=draw(st.integers(0, 1000)))
    if kind in (OpKind.FENCE, OpKind.EPOCH):
        return TraceOp(kind)
    if kind is OpKind.STORE:
        return TraceOp(kind, addr=draw(addrs), size=draw(sizes),
                       value=draw(values), tag=draw(tags))
    return TraceOp(kind, addr=draw(addrs), size=draw(sizes), tag=draw(tags))


programs = st.lists(
    st.lists(trace_ops(), max_size=40), min_size=1, max_size=4
).map(lambda tt: ProgramTrace([ThreadTrace(ops) for ops in tt]))


@given(programs)
@settings(max_examples=150)
def test_columnar_roundtrip_lossless(trace):
    cols = ColumnarTrace.from_program(trace)
    back = cols.to_program()
    assert back.num_threads == trace.num_threads
    for t_orig, t_back in zip(trace.threads, back.threads):
        assert list(t_orig) == list(t_back)


@given(programs)
@settings(max_examples=50)
def test_op_at_matches_source(trace):
    cols = ColumnarTrace.from_program(trace)
    for tid, thread in enumerate(trace.threads):
        for i, op in enumerate(thread):
            assert cols.op_at(tid, i) == op


@given(programs)
@settings(max_examples=50)
def test_fast_path_flag_tracks_wide_ops(trace):
    cols = ColumnarTrace.from_program(trace)
    has_wide = any(
        op.value >= 1 << 64 for t in trace.threads for op in t
    )
    assert cols.fast_path_ok == (not has_wide)


def test_columnar_of_memoizes_and_roundtrips_identity():
    trace = ProgramTrace.single([TraceOp.store(0, 1), TraceOp.load(64)])
    cols = columnar_of(trace)
    assert columnar_of(trace) is cols
    assert program_of(cols) is trace
    assert program_of(trace) is trace


@given(st.lists(st.tuples(st.integers(0, 56), values, sizes), max_size=30))
def test_store_byte_dicts_match_to_bytes(stores):
    offs = [s[0] for s in stores]
    vals = [s[1] for s in stores]
    szs = [s[2] for s in stores]
    for d, (o, v, s) in zip(_store_byte_dicts(offs, vals, szs), stores):
        expected = {o + i: (v >> (8 * i)) & 0xFF for i in range(s)}
        assert d == expected
