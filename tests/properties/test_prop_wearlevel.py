"""Property tests for Start-Gap wear leveling (repro.mem.wearlevel)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.block import BlockData
from repro.mem.wearlevel import StartGapRemapper, WearLevelledMedia

sizes = st.integers(min_value=2, max_value=32)
psis = st.integers(min_value=1, max_value=20)
write_streams = st.lists(
    st.tuples(st.integers(min_value=0, max_value=31),
              st.integers(min_value=1, max_value=1 << 40)),
    min_size=1,
    max_size=200,
)


@given(sizes, psis, st.integers(min_value=0, max_value=500))
def test_mapping_always_bijective(n, psi, steps):
    r = StartGapRemapper(n, psi)
    for _ in range(steps):
        r.note_write()
    mapping = r.mapping_snapshot()
    assert len(set(mapping.values())) == n
    assert all(0 <= pa <= n for pa in mapping.values())
    assert r.gap not in set(mapping.values())


@given(sizes, psis, write_streams)
def test_levelled_media_preserves_last_writes(n, psi, stream):
    media = WearLevelledMedia(base=0, size=n * 64, psi=psi)
    shadow = {}
    for block_idx, value in stream:
        addr = (block_idx % n) * 64
        data = BlockData()
        data.write_word(0, value)
        media.write_block(addr, data)
        shadow[addr] = value
    for addr, value in shadow.items():
        assert media.peek_block(addr).read_word(0) == value


@given(psis, st.integers(min_value=50, max_value=400))
def test_single_hot_line_wear_bounded(psi, writes):
    """The hottest physical line's wear is bounded by roughly
    psi x (writes / (N+1)) + psi — never the full write count (once
    rotation has begun)."""
    n = 8
    media = WearLevelledMedia(base=0, size=n * 64, psi=psi)
    data = BlockData()
    data.write_word(0, 1)
    for _ in range(writes):
        media.write_block(0, data)
    moves = media.remapper.gap_moves
    if moves > n + 1:  # at least one full rotation
        assert media.max_block_writes() < writes
