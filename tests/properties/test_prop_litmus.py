"""Litmus DSL properties: random valid tests survive the JSON wire
format byte-for-byte, and the model enumerators keep their containment
invariant on arbitrary programs (not just the curated corpus)."""

import json

from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.litmus.dsl import LITMUS_SCHEMA, LitmusOp, LitmusTest
from repro.litmus.models import epoch_states, px86_states, strict_states

LOCATIONS = ("x", "y", "z", "w")


@hst.composite
def litmus_tests(draw):
    """Arbitrary *valid* litmus tests: op skeletons are drawn freely and
    store values assigned afterwards (unique positive per location, as
    the DSL requires)."""
    n_locs = draw(hst.integers(min_value=1, max_value=4))
    locations = LOCATIONS[:n_locs]
    n_cores = draw(hst.integers(min_value=1, max_value=3))
    counters = {loc: 0 for loc in locations}

    def make_op(skeleton):
        kind, loc_idx, cycles = skeleton
        loc = locations[loc_idx % n_locs]
        if kind == "store":
            counters[loc] += 1
            return LitmusOp("store", loc=loc, value=counters[loc])
        if kind in ("load", "flush"):
            return LitmusOp(kind, loc=loc)
        if kind == "compute":
            return LitmusOp("compute", cycles=cycles)
        return LitmusOp(kind)

    skeleton = hst.tuples(
        hst.sampled_from(
            ["store", "store", "load", "flush", "fence", "epoch", "compute"]
        ),
        hst.integers(min_value=0, max_value=3),
        hst.integers(min_value=1, max_value=100),
    )
    programs = tuple(
        tuple(make_op(s) for s in draw(
            hst.lists(skeleton, min_size=0, max_size=6)
        ))
        for _ in range(n_cores)
    )
    same_block = ()
    if n_locs >= 2 and draw(hst.booleans()):
        same_block = (locations[:2],)
    return LitmusTest(
        name=draw(hst.sampled_from(["alpha", "beta", "gamma"])),
        locations=locations,
        programs=programs,
        family="prop",
        same_block=same_block,
        smoke=draw(hst.booleans()),
    )


@settings(max_examples=60, deadline=None)
@given(test=litmus_tests())
def test_round_trips_through_the_json_wire_format(test):
    payload = test.to_payload()
    wire = json.dumps(payload)
    assert LitmusTest.from_payload(json.loads(wire)) == test
    assert json.loads(wire)["schema"] == LITMUS_SCHEMA


@settings(max_examples=40, deadline=None)
@given(test=litmus_tests())
def test_strict_states_stay_inside_both_relaxed_models(test):
    strict = strict_states(test)
    init = tuple(0 for _ in test.locations)
    assert init in strict
    assert strict <= px86_states(test)
    assert strict <= epoch_states(test)
