"""Property: battery-domain schemes never lose an acked request.

The drill's RPO gate, generalised — for *any* small traffic session and
*any* crash point, a scheme whose persistence domain is battery-covered
(bbb, eadr) must show ``acked-lost == 0``: once the reactor acked a
request to its client, the crash drain guarantees its persisting stores
reach NVMM.  This is the paper's central claim expressed as an
invariant rather than a fixed smoke case."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.recovery import ACKED_LOST, RETRIED_DUPLICATE
from repro.core.registry import BBB, EADR
from repro.serve import DrillUnit, TrafficSpec, count_crash_sites, \
    execute_drill_unit

_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

sessions = st.fixed_dictionaries({
    "requests": st.integers(min_value=8, max_value=24),
    "seed": st.integers(min_value=0, max_value=2 ** 16),
    "offered_load": st.sampled_from([0.5, 2.0, 8.0]),
    "arrival": st.sampled_from(["open", "closed"]),
})


def _drill(scheme, session, crash_fraction):
    spec = TrafficSpec(**session)
    total = count_crash_sites(scheme, spec, entries=8)
    visit = max(1, min(total - 1, int(total * crash_fraction)))
    return execute_drill_unit(
        DrillUnit(scheme=scheme, spec=spec, crash_visit=visit, entries=8)
    )


@_SETTINGS
@given(session=sessions, crash_fraction=st.floats(min_value=0.05,
                                                  max_value=0.95))
def test_bbb_never_loses_an_acked_request(session, crash_fraction):
    unit = _drill(BBB, session, crash_fraction)
    assert unit["crashed"]
    assert unit["outcomes"][ACKED_LOST] == 0
    assert unit["rpo"]["acked_lost_bytes"] == 0
    assert unit["contract_consistent"]


@_SETTINGS
@given(session=sessions, crash_fraction=st.floats(min_value=0.05,
                                                  max_value=0.95))
def test_eadr_never_loses_an_acked_request(session, crash_fraction):
    unit = _drill(EADR, session, crash_fraction)
    assert unit["crashed"]
    assert unit["outcomes"][ACKED_LOST] == 0
    assert unit["contract_consistent"]


@_SETTINGS
@given(session=sessions, crash_fraction=st.floats(min_value=0.05,
                                                  max_value=0.95))
def test_every_request_is_accounted_for(session, crash_fraction):
    """The taxonomy is a partition: outcomes plus pre-crash resolutions
    cover the session exactly, and the restart leg serves every request
    whose client never got an answer."""
    unit = _drill(BBB, session, crash_fraction)
    covered = sum(unit["outcomes"].values()) + unit["resolved_pre_crash"]
    assert covered == session["requests"]
    rec = unit["recovery"]
    assert rec["restart_completed"] == rec["restart_requests"]
    assert rec["restart_requests"] == (
        unit["outcomes"]["unacked-lost"] + unit["outcomes"][RETRIED_DUPLICATE]
    )
