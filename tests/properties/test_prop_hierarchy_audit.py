"""Property tests: protocol bookkeeping stays consistent under random
programs (repro.mem.audit)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.audit import (
    HierarchyAuditError,
    audit_hierarchy,
    check_directory_agreement,
    check_llc_inclusion,
    check_single_writer,
)
from repro.mem.block import CacheBlock, E, M
from repro.sim.config import SystemConfig
from repro.api import build_system
from repro.sim.trace import ProgramTrace, ThreadTrace, TraceOp

CFG = SystemConfig(num_cores=4).scaled_for_testing()

op_strategy = st.tuples(
    st.sampled_from(["load", "store"]),
    st.booleans(),
    st.integers(min_value=0, max_value=31),
    st.sampled_from([0, 8, 24, 56]),
    st.integers(min_value=1, max_value=1 << 32),
)


def to_op(kind, persistent, block, offset, value):
    base = CFG.mem.persistent_base if persistent else 4096
    addr = base + block * 64 + offset
    return TraceOp.load(addr) if kind == "load" else TraceOp.store(addr, value)


programs = st.lists(
    st.lists(op_strategy, min_size=1, max_size=50), min_size=1, max_size=4
)


@settings(max_examples=50, deadline=None)
@given(programs, st.sampled_from(["bbb", "eadr", "none", "bsp"]))
def test_hierarchy_consistent_after_random_programs(threads, scheme_name):
    system = build_system(scheme_name, config=CFG)
    trace = ProgramTrace(
        [ThreadTrace([to_op(*op) for op in ops]) for ops in threads]
    )
    system.run(trace, finalize=False)
    audit_hierarchy(system.hierarchy)


@settings(max_examples=25, deadline=None)
@given(programs, st.integers(min_value=1, max_value=120))
def test_hierarchy_consistent_mid_program(threads, prefix):
    """Audit after an arbitrary truncated prefix of the program."""
    system = build_system("bbb", config=CFG)
    cut = []
    remaining = prefix
    for ops in threads:
        take = min(len(ops), remaining)
        cut.append(ThreadTrace([to_op(*op) for op in ops[:take]]))
        remaining -= take
    system.run(ProgramTrace(cut), finalize=False)
    audit_hierarchy(system.hierarchy)


class TestAuditorsCatchSeededBugs:
    def _system(self):
        system = build_system("none", config=CFG)
        h = system.hierarchy
        x = CFG.mem.persistent_base
        h.store(0, x, 8, 1, 0)
        return system, h, x & ~63

    def test_inclusion_violation(self):
        system, h, bx = self._system()
        h.llc.remove(bx)
        try:
            check_llc_inclusion(h)
        except HierarchyAuditError as exc:
            assert "inclusion" in str(exc)
        else:
            raise AssertionError("seeded inclusion violation not caught")

    def test_double_exclusive_violation(self):
        system, h, bx = self._system()
        h.l1s[1].insert(CacheBlock(bx, state=M))
        try:
            check_single_writer(h)
        except HierarchyAuditError as exc:
            assert "exclusive" in str(exc)
        else:
            raise AssertionError("seeded double-M not caught")

    def test_directory_sharer_mismatch(self):
        system, h, bx = self._system()
        h.directory.record_l1_eviction(bx, 0)  # lie: core 0 still holds it
        try:
            check_directory_agreement(h)
        except HierarchyAuditError as exc:
            assert "sharers" in str(exc) or "directory" in str(exc)
        else:
            raise AssertionError("seeded directory mismatch not caught")

    def test_untracked_block_violation(self):
        system, h, bx = self._system()
        h.directory.drop(bx)
        try:
            check_directory_agreement(h)
        except HierarchyAuditError as exc:
            assert "no directory entry" in str(exc)
        else:
            raise AssertionError("seeded untracked block not caught")
