"""Differential testing: the full hierarchy vs a flat-memory oracle.

Random multicore programs run through the complete simulator (caches,
MESI directory, store buffers, bbPBs, evictions, drains) with execution
logging on; replaying the log against :class:`FlatMemory` must reproduce
every load value exactly.  Any coherence, forwarding, merge, or writeback
bug diverges.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.sim.reference import FlatMemory, LogKind, LogRecord, check_against_reference
from repro.api import build_system
from repro.sim.trace import ProgramTrace, ThreadTrace, TraceOp

CFG = SystemConfig(num_cores=4).scaled_for_testing()

op_strategy = st.tuples(
    st.sampled_from(["load", "store"]),
    st.booleans(),                                     # persistent vs DRAM
    st.integers(min_value=0, max_value=23),            # block index
    st.sampled_from([0, 8, 16, 24, 32, 40, 48, 56]),   # offset
    st.integers(min_value=1, max_value=(1 << 62)),
)


def to_trace_op(kind, persistent, block, offset, value):
    base = CFG.mem.persistent_base if persistent else 4096
    addr = base + block * 64 + offset
    if kind == "load":
        return TraceOp.load(addr)
    return TraceOp.store(addr, value)


programs = st.lists(
    st.lists(op_strategy, min_size=1, max_size=40), min_size=1, max_size=4
)


def run_logged(scheme, threads):
    system = build_system(scheme, config=CFG)
    system.engine._log_enabled = True
    trace = ProgramTrace(
        [ThreadTrace([to_trace_op(*op) for op in ops]) for ops in threads]
    )
    return system.engine.run(trace)


@settings(max_examples=50, deadline=None)
@given(programs)
def test_bbb_hierarchy_matches_flat_memory(threads):
    result = run_logged("bbb", threads)
    divergences = check_against_reference(result.log)
    assert not divergences, divergences[0]


@settings(max_examples=25, deadline=None)
@given(programs)
def test_eadr_hierarchy_matches_flat_memory(threads):
    result = run_logged("eadr", threads)
    assert not check_against_reference(result.log)


@settings(max_examples=25, deadline=None)
@given(programs)
def test_bsp_hierarchy_matches_flat_memory(threads):
    result = run_logged("bsp", threads)
    assert not check_against_reference(result.log)


@settings(max_examples=15, deadline=None)
@given(programs)
def test_pmem_hierarchy_matches_flat_memory(threads):
    result = run_logged("pmem", threads)
    assert not check_against_reference(result.log)


@settings(max_examples=15, deadline=None)
@given(programs)
def test_no_persistency_hierarchy_matches_flat_memory(threads):
    """Even the volatile scheme must be *functionally* coherent while
    running — only its crash behaviour differs."""
    result = run_logged("none", threads)
    assert not check_against_reference(result.log)


class TestOracleItself:
    def test_flat_memory_roundtrip(self):
        mem = FlatMemory()
        mem.store(0x100, 0xDEADBEEF, 4)
        assert mem.load(0x100, 4) == 0xDEADBEEF
        assert mem.load(0x102, 2) == 0xDEAD

    def test_checker_flags_divergence(self):
        log = [
            LogRecord(LogKind.STORE, 0, 0x100, 8, 42),
            LogRecord(LogKind.LOAD, 1, 0x100, 8, 41),  # wrong value
        ]
        divergences = check_against_reference(log)
        assert len(divergences) == 1
        assert divergences[0].expected == 42

    def test_checker_accepts_correct_log(self):
        log = [
            LogRecord(LogKind.STORE, 0, 0x100, 8, 42),
            LogRecord(LogKind.LOAD, 1, 0x100, 8, 42),
        ]
        assert not check_against_reference(log)
