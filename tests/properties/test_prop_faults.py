"""The robustness property: random programs crashed at random points under
random fault plans NEVER classify as silent corruption on the default BBB
configuration.

Every modelled fault has a default-on detection channel (media ECC, bbPB
parity, battery brown-out, controller machine check) and
:func:`repro.fault.plan.random_plan` models faults — not cheaper hardware —
so it never disables a channel.  Whatever a plan does to a run, the result
is therefore either still contract-consistent or noticed by at least one
channel.  (The clean-run baseline is consistent by the companion property
in test_prop_crash_consistency.py, so the strong form with
``baseline_consistent=True`` applies.)
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import RunOptions, build_system
from repro.core.recovery import (
    Outcome,
    check_exact_durability,
    classify_outcome,
)
from repro.fault.injector import FaultInjector
from repro.fault.plan import BATTERY_DOMAIN_SITES, random_plan
from repro.sim.config import SystemConfig
from repro.sim.trace import ProgramTrace, ThreadTrace, TraceOp

CFG = SystemConfig(num_cores=2).scaled_for_testing()

op_strategy = st.tuples(
    st.sampled_from(["load", "store", "compute"]),
    st.integers(min_value=0, max_value=15),   # block index
    st.integers(min_value=0, max_value=56),   # offset (8-aligned below)
    st.integers(min_value=1, max_value=1 << 30),
)


def to_trace_op(kind, block, offset, value):
    addr = CFG.mem.persistent_base + block * 64 + (offset & ~7)
    if kind == "load":
        return TraceOp.load(addr)
    if kind == "store":
        return TraceOp.store(addr, value)
    return TraceOp.compute(value % 20)


thread_strategy = st.lists(op_strategy, min_size=1, max_size=30)
program_strategy = st.lists(thread_strategy, min_size=1, max_size=2)


def build_program(threads):
    return ProgramTrace(
        [ThreadTrace([to_trace_op(*op) for op in ops]) for ops in threads]
    )


def _classify(threads, data, plan):
    trace = build_program(threads)
    crash_at = data.draw(
        st.integers(min_value=1, max_value=trace.total_ops()), label="crash_at"
    )
    entries = data.draw(st.sampled_from([2, 8, 32]), label="entries")
    injector = FaultInjector(plan)
    system = build_system("bbb", config=CFG, entries=entries,
                          options=RunOptions(fault_injector=injector))
    result = system.run(trace, crash_at_op=crash_at)
    contract = check_exact_durability(
        system.nvmm_media, result.committed_persists
    )
    return classify_outcome(contract, injector.detected_count > 0), injector


@settings(max_examples=50, deadline=None)
@given(program_strategy, st.integers(min_value=0, max_value=1 << 20), st.data())
def test_random_faults_never_silent_on_bbb(threads, plan_seed, data):
    plan = random_plan(plan_seed)
    outcome, _ = _classify(threads, data, plan)
    assert outcome is not Outcome.SILENT_CORRUPTION


@settings(max_examples=40, deadline=None)
@given(program_strategy, st.integers(min_value=0, max_value=1 << 20), st.data())
def test_battery_domain_faults_consistent_or_detected(threads, plan_seed, data):
    """The battery domain's stronger guarantee, per injected fault: a run
    the faults actually touched is either still exactly durable or carries
    a detection record."""
    plan = random_plan(plan_seed, sites=BATTERY_DOMAIN_SITES)
    outcome, injector = _classify(threads, data, plan)
    assert outcome is not Outcome.SILENT_CORRUPTION
    if outcome is not Outcome.CONSISTENT:
        assert injector.detected_count > 0
