"""Model-checker properties: for random small programs, exhaustive
micro-step crash exploration of the gap-free schemes (bbb, eadr) finds
zero violations, and fingerprint pruning never changes a verdict."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.checker import CheckUnit, explore
from repro.check.minimize import first_failing_point
from repro.sim.config import SystemConfig
from repro.sim.trace import ProgramTrace, ThreadTrace, TraceOp
from repro.workloads.base import WorkloadSpec

CFG = SystemConfig(num_cores=2).scaled_for_testing()

# Random programs over a small persistent footprint (8 blocks) so
# cross-core conflicts — the Fig. 6 coherence windows — are common.
# Short streams keep the exhaustive point enumeration fast (each op is
# several micro-step crash points, each a full re-run).
op_strategy = st.tuples(
    st.sampled_from(["load", "store", "store", "compute"]),
    st.integers(min_value=0, max_value=7),    # block index
    st.integers(min_value=0, max_value=56),   # offset (8-aligned below)
    st.integers(min_value=1, max_value=1 << 30),
)


def to_trace_op(kind, block, offset, value):
    addr = CFG.mem.persistent_base + block * 64 + (offset & ~7)
    if kind == "load":
        return TraceOp.load(addr)
    if kind == "store":
        return TraceOp.store(addr, value)
    return TraceOp.compute(value % 10)


program_strategy = st.lists(
    st.lists(op_strategy, min_size=1, max_size=8), min_size=1, max_size=2
)


def build_program(threads):
    return ProgramTrace(
        [ThreadTrace([to_trace_op(*op) for op in ops]) for ops in threads]
    )


@settings(max_examples=25, deadline=None)
@given(program_strategy, st.sampled_from(["bbb", "eadr"]))
def test_gap_free_schemes_survive_every_micro_step(threads, scheme):
    """No micro-step crash point of any random program loses a committed
    persist under bbb or eadr: contract + golden differential both hold."""
    trace = build_program(threads)
    unit = CheckUnit(scheme=scheme, entries=2, config=CFG)
    failing = first_failing_point(unit, CFG, {}, trace)
    assert failing is None, failing


@settings(max_examples=6, deadline=None)
@given(
    st.sampled_from(["bbb", "eadr"]),
    st.integers(min_value=0, max_value=1000),
)
def test_pruned_run_reports_same_verdicts_as_unpruned(scheme, seed):
    """Fingerprint pruning is sound: per-point verdicts of a pruned
    exhaustive run equal the unpruned run's, over random workload seeds."""
    spec = WorkloadSpec(threads=2, ops=2, elements=64, seed=seed)
    pruned, total_a, _ = explore(
        CheckUnit(scheme=scheme, workload="mutateNC", spec=spec, prune=True)
    )
    plain, total_b, _ = explore(
        CheckUnit(scheme=scheme, workload="mutateNC", spec=spec, prune=False)
    )
    assert total_a == total_b
    assert [(v.point, v.consistent, v.violations) for v in pruned] == \
        [(v.point, v.consistent, v.violations) for v in plain]
