"""Property-based tests for the bbPB buffers (repro.core.bbpb)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bbpb import MemorySideBBPB, ProcessorSideBBPB
from repro.mem.block import BlockData
from repro.sim.config import BBBConfig


class RecordingSink:
    def __init__(self, latency=25):
        self.latency = latency
        self.port_free = 0
        self.drained = []  # (addr, word0)

    def __call__(self, addr, data, now):
        start = max(now, self.port_free)
        done = start + self.latency
        self.port_free = done
        self.drained.append((addr, data.read_word(0)))
        return done


def word(v):
    d = BlockData()
    d.write_word(0, v)
    return d


store_seqs = st.lists(
    st.tuples(st.integers(min_value=0, max_value=15), st.integers(min_value=1, max_value=1 << 32)),
    min_size=1,
    max_size=60,
)
entry_counts = st.sampled_from([1, 2, 4, 8, 32])
buffer_kinds = st.sampled_from([MemorySideBBPB, ProcessorSideBBPB])


def run_buffer(cls, entries, seq):
    sink = RecordingSink()
    cfg = BBBConfig(entries=entries, memory_side=cls is MemorySideBBPB)
    buf = cls(cfg, core_id=0, drain=sink)
    now = 0
    for block_idx, value in seq:
        buf.put(0x10000 + block_idx * 64, word(value), now)
        now += 10
    return buf, sink, now


@given(buffer_kinds, entry_counts, store_seqs)
def test_occupancy_never_exceeds_capacity(cls, entries, seq):
    sink = RecordingSink()
    cfg = BBBConfig(entries=entries, memory_side=cls is MemorySideBBPB)
    buf = cls(cfg, core_id=0, drain=sink)
    now = 0
    for block_idx, value in seq:
        buf.put(0x10000 + block_idx * 64, word(value), now)
        assert len(buf) <= entries
        now += 10


@given(buffer_kinds, entry_counts, store_seqs)
def test_nothing_is_ever_lost(cls, entries, seq):
    """Every block's final value is durable after drain_all: it appears in
    the drain stream, and the *last* drain of each block carries the final
    value."""
    buf, sink, now = run_buffer(cls, entries, seq)
    buf.drain_all(now + 10_000)
    final_values = {}
    for block_idx, value in seq:
        final_values[0x10000 + block_idx * 64] = value
    last_drained = {}
    for addr, value in sink.drained:
        last_drained[addr] = value
    assert last_drained == final_values


@given(entry_counts, store_seqs)
def test_memory_side_drains_bounded_by_allocations(entries, seq):
    buf, sink, now = run_buffer(MemorySideBBPB, entries, seq)
    buf.drain_all(now + 10_000)
    assert len(sink.drained) == buf.allocations
    assert buf.allocations + buf.coalesces == len(seq)


@given(entry_counts, store_seqs)
def test_processor_side_never_drains_fewer_than_memory_side(entries, seq):
    m_buf, m_sink, now = run_buffer(MemorySideBBPB, entries, seq)
    p_buf, p_sink, _ = run_buffer(ProcessorSideBBPB, entries, seq)
    m_buf.drain_all(now + 10_000)
    p_buf.drain_all(now + 10_000)
    assert len(p_sink.drained) >= len(m_sink.drained)


@given(store_seqs)
def test_processor_side_drains_in_program_order(seq):
    buf, sink, now = run_buffer(ProcessorSideBBPB, 4, seq)
    buf.drain_all(now + 10_000)
    # Reconstruct the expected order: records in arrival order, with
    # consecutive same-block stores coalesced into one record.
    expected = []
    for block_idx, value in seq:
        addr = 0x10000 + block_idx * 64
        if expected and expected[-1][0] == addr and not expected[-1][2]:
            expected[-1] = (addr, value, expected[-1][2])
        else:
            expected.append((addr, value, False))
    # In-flight records cannot coalesce; program order of drained addrs
    # must be a supersequence-respecting order: addresses appear in the
    # order records were created.
    drained_addrs = [a for a, _ in sink.drained]
    created_order = []
    for addr, _, _ in expected:
        created_order.append(addr)
    # The drained sequence must preserve relative order of first
    # occurrences of each record — verify it's sorted by record index.
    assert len(drained_addrs) >= 1
    # every drain corresponds to some record in order: check monotonicity
    # by walking both lists.
    i = 0
    for addr in drained_addrs:
        while i < len(created_order) and created_order[i] != addr:
            i += 1
        if i == len(created_order):
            break
    # If we walked off the end, ordering was violated somewhere -- but
    # in-flight splits may create extra records, so only assert when the
    # counts match exactly.
    if len(drained_addrs) == len(created_order):
        assert drained_addrs == created_order


@given(entry_counts, store_seqs)
def test_crash_drain_preserves_final_values(entries, seq):
    buf, sink, now = run_buffer(MemorySideBBPB, entries, seq)
    crash_content = dict(
        (addr, data.read_word(0)) for addr, data in buf.crash_drain()
    )
    final_values = {}
    for block_idx, value in seq:
        final_values[0x10000 + block_idx * 64] = value
    durable = {}
    for addr, value in sink.drained:
        durable[addr] = value
    durable.update(crash_content)
    assert durable == final_values


@given(store_seqs)
def test_invariant_single_residency_within_buffer(seq):
    buf, _, _ = run_buffer(MemorySideBBPB, 8, seq)
    blocks = buf.resident_blocks()
    assert len(blocks) == len(set(blocks))
