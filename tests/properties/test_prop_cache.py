"""Property-based tests for the cache array (repro.mem.cache)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.block import CacheBlock, E
from repro.mem.cache import CacheArray
from repro.sim.config import CacheConfig

CONFIG = CacheConfig(size_bytes=1024, assoc=2, block_size=64)  # 8 sets x 2

block_addrs = st.integers(min_value=0, max_value=63).map(lambda i: i * 64)
op_lists = st.lists(
    st.tuples(st.sampled_from(["insert", "lookup", "remove"]), block_addrs),
    max_size=80,
)


def apply_ops(ops):
    cache = CacheArray(CONFIG)
    for op, addr in ops:
        if op == "insert" and not cache.contains(addr):
            cache.insert(CacheBlock(addr, state=E))
        elif op == "lookup":
            cache.lookup(addr)
        elif op == "remove":
            cache.remove(addr)
    return cache


@given(op_lists)
def test_set_capacity_never_exceeded(ops):
    cache = apply_ops(ops)
    per_set = {}
    for blk in cache.blocks():
        per_set.setdefault(cache.set_index(blk.addr), []).append(blk)
    for blocks in per_set.values():
        assert len(blocks) <= CONFIG.assoc


@given(op_lists)
def test_no_duplicate_residency(ops):
    cache = apply_ops(ops)
    addrs = [b.addr for b in cache.blocks()]
    assert len(addrs) == len(set(addrs))


@given(op_lists)
def test_blocks_live_in_their_set(ops):
    cache = apply_ops(ops)
    for set_idx, frames in cache._sets.items():
        for addr, blk in frames.items():
            if blk.valid:
                assert blk.addr == addr
                assert cache.set_index(blk.addr) == set_idx


@given(op_lists, block_addrs)
def test_insert_makes_block_resident(ops, addr):
    cache = apply_ops(ops)
    if not cache.contains(addr):
        cache.insert(CacheBlock(addr, state=E))
    assert cache.contains(addr)


@given(op_lists)
def test_occupancy_matches_iteration(ops):
    cache = apply_ops(ops)
    assert cache.occupancy() == len(list(cache.blocks()))
