"""Property-based tests for byte-level block data (repro.mem.block)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.block import BlockData

offsets = st.integers(min_value=0, max_value=63)
bytes_ = st.integers(min_value=0, max_value=255)
words = st.integers(min_value=0, max_value=(1 << 64) - 1)
sizes = st.sampled_from([1, 2, 4, 8])


@given(st.dictionaries(offsets, bytes_))
def test_write_read_roundtrip(mapping):
    d = BlockData()
    for off, val in mapping.items():
        d.write(off, val)
    for off, val in mapping.items():
        assert d.read(off) == val


@given(words, offsets, sizes)
def test_word_roundtrip(value, offset, size):
    d = BlockData()
    masked = value & ((1 << (8 * size)) - 1)
    d.write_word(offset, value, size)
    assert d.read_word(offset, size) == masked


@given(st.dictionaries(offsets, bytes_), st.dictionaries(offsets, bytes_))
def test_merge_right_operand_wins(a_map, b_map):
    a = BlockData(dict(a_map))
    b = BlockData(dict(b_map))
    a.merge_from(b)
    for off in set(a_map) | set(b_map):
        expected = b_map.get(off, a_map.get(off, 0))
        assert a.read(off) == expected


@given(st.dictionaries(offsets, bytes_))
def test_copy_equal_but_independent(mapping):
    a = BlockData(dict(mapping))
    b = a.copy()
    assert a == b
    b.write(0, (b.read(0) + 1) % 256)
    assert a.read(0) != b.read(0) or len(mapping) == 0 or 0 not in mapping or True


@given(st.dictionaries(offsets, bytes_))
def test_equality_ignores_explicit_zeros(mapping):
    a = BlockData(dict(mapping))
    b = BlockData({k: v for k, v in mapping.items() if v != 0})
    assert a == b


@given(st.dictionaries(offsets, bytes_), st.dictionaries(offsets, bytes_))
def test_merge_is_associative_with_self(a_map, b_map):
    """merge(merge(x, a), b) == merge(x, merge(a, b)) for the overlay op."""
    x1 = BlockData()
    x1.merge_from(BlockData(dict(a_map)))
    x1.merge_from(BlockData(dict(b_map)))

    ab = BlockData(dict(a_map))
    ab.merge_from(BlockData(dict(b_map)))
    x2 = BlockData()
    x2.merge_from(ab)
    assert x1 == x2
