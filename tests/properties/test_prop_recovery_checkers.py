"""Property tests for the recovery checkers themselves (repro.core.recovery).

The checkers are the trusted oracle of the whole crash-consistency story,
so they get their own adversarial testing: synthetic durable images built
from known-good prefixes must always pass, and images with injected holes
must always fail (when determinable).
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.recovery import (
    check_exact_durability,
    check_prefix_consistency,
    replay_image,
)
from repro.mem.block import BlockData
from repro.mem.nvmm import NVMMedia
from repro.sim.engine import PersistRecord

BASE = 0x100000


def media_from_records(records):
    media = NVMMedia(base=BASE, size=1 << 20, block_size=64)
    for rec in records:
        data = BlockData()
        data.write_word(rec.addr & 63, rec.value, rec.size)
        media.write_block(rec.addr & ~63, data)
    return media


# Write-once single-core record streams (distinct blocks, nonzero values).
record_streams = st.lists(
    st.integers(min_value=1, max_value=(1 << 62)), min_size=1, max_size=40
).map(
    lambda values: [
        PersistRecord(0, BASE + i * 64, 8, v, i + 1) for i, v in enumerate(values)
    ]
)


@settings(max_examples=60, deadline=None)
@given(record_streams)
def test_full_image_always_passes_both_checkers(records):
    media = media_from_records(records)
    assert check_exact_durability(media, records)
    assert check_prefix_consistency(media, records)


@settings(max_examples=60, deadline=None)
@given(record_streams, st.data())
def test_any_prefix_passes_prefix_checker(records, data):
    cut = data.draw(st.integers(min_value=0, max_value=len(records)), label="cut")
    media = media_from_records(records[:cut])
    assert check_prefix_consistency(media, records)


@settings(max_examples=60, deadline=None)
@given(record_streams, st.data())
def test_missing_suffix_fails_exact_checker(records, data):
    cut = data.draw(
        st.integers(min_value=0, max_value=len(records) - 1), label="cut"
    )
    media = media_from_records(records[:cut])
    assert not check_exact_durability(media, records)


@settings(max_examples=60, deadline=None)
@given(record_streams, st.data())
def test_hole_always_fails_prefix_checker(records, data):
    """Drop one record from the middle while keeping a later one: a hole,
    which the prefix checker must always flag (values are write-once and
    nonzero, so everything is determinate)."""
    assume(len(records) >= 2)
    hole = data.draw(
        st.integers(min_value=0, max_value=len(records) - 2), label="hole"
    )
    kept = records[:hole] + records[hole + 1:]
    media = media_from_records(kept)
    result = check_prefix_consistency(media, records)
    assert not result
    assert any("persist order violated" in v for v in result.violations)


@settings(max_examples=40, deadline=None)
@given(record_streams)
def test_replay_image_matches_media_built_from_records(records):
    media = media_from_records(records)
    image = replay_image(records)
    for baddr, expected in image.items():
        assert media.peek_block(baddr) == expected
