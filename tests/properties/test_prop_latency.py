"""Property-based tests for the latency accumulators (repro.obs.latency):
the streaming log-bucket histogram must agree with the exact accumulator —
identical count/sum/mean, and every published quantile conservative
(never below the exact nearest-rank value) with relative error bounded by
the bucket growth factor.  Merging histograms must equal recording the
concatenated samples.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.latency import (DEFAULT_GROWTH, ExactLatencies,
                               LatencyHistogram, LatencyRecorder,
                               PERCENTILE_LABELS, percentile_summary)

# Latencies from the degenerate 0 through multi-octave spreads.
latencies = st.lists(st.integers(min_value=0, max_value=1 << 24),
                     min_size=1, max_size=300)
quantiles = st.one_of(
    st.sampled_from([q for _, q in PERCENTILE_LABELS]),
    st.floats(min_value=0.001, max_value=1.0,
              allow_nan=False, allow_infinity=False),
)


@given(latencies, quantiles)
@settings(max_examples=200)
def test_histogram_quantile_is_conservative_and_bounded(values, q):
    hist = LatencyHistogram()
    exact = ExactLatencies()
    for v in values:
        hist.record(v)
        exact.record(v)
    true_q = exact.quantile(q)
    est = hist.quantile(q)
    # Conservative: the estimate never understates the exact value.
    assert est >= true_q
    # Bounded: at most one bucket's width above it (and never above the
    # observed max).
    assert est <= max(values)
    assert est <= math.ceil(true_q * DEFAULT_GROWTH) if true_q else est == 0


@given(latencies)
@settings(max_examples=100)
def test_histogram_moments_are_exact(values):
    hist = LatencyHistogram()
    exact = ExactLatencies()
    for v in values:
        hist.record(v)
        exact.record(v)
    assert hist.count == exact.count == len(values)
    assert hist.total == exact.total == sum(values)
    assert math.isclose(hist.mean(), exact.mean())
    # The shared report block shape the traffic report embeds.
    block = percentile_summary(hist)
    assert set(block) == {"count", "mean_cycles"} | {
        label for label, _ in PERCENTILE_LABELS
    }


@given(latencies, latencies)
@settings(max_examples=100)
def test_merge_equals_concatenation(left, right):
    merged = LatencyHistogram()
    for v in left:
        merged.record(v)
    other = LatencyHistogram()
    for v in right:
        other.record(v)
    merged.merge(other)

    whole = LatencyHistogram()
    for v in left + right:
        whole.record(v)
    assert merged.to_payload() == whole.to_payload()
    for _, q in PERCENTILE_LABELS:
        assert merged.quantile(q) == whole.quantile(q)


@given(latencies)
@settings(max_examples=50)
def test_recorder_aggregate_covers_all_keys(values):
    recorder = LatencyRecorder()
    for i, v in enumerate(values):
        recorder.record(v, f"tenant:{i % 3}")
    assert recorder.histogram().count == len(values)
    assert sum(recorder.histogram(k).count for k in recorder.keys()) == len(
        values
    )
