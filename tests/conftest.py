"""Shared fixtures and helpers for the test suite.

Most tests use a deliberately tiny system (2 KB L1s, 8 KB LLC, small
memory) so that evictions, inclusion enforcement, and drain pressure all
happen within a few dozen operations.
"""

from __future__ import annotations

import pytest

from repro.sim.config import (
    BBBConfig,
    CacheConfig,
    MemConfig,
    SystemConfig,
)
from repro.sim.trace import ProgramTrace, ThreadTrace, TraceOp


@pytest.fixture
def small_config() -> SystemConfig:
    """Tiny 4-core system for fast, eviction-heavy tests."""
    return SystemConfig(num_cores=4).scaled_for_testing()


@pytest.fixture
def two_core_config() -> SystemConfig:
    """Two cores — the shape of the Fig. 6 coherence scenarios."""
    return SystemConfig(num_cores=2).scaled_for_testing()


def pbase(config: SystemConfig) -> int:
    """First persistent address of a config (start of the palloc region)."""
    return config.mem.persistent_base


def paddr(config: SystemConfig, block: int, offset: int = 0) -> int:
    """Persistent address at block index ``block`` + ``offset`` bytes."""
    return config.mem.persistent_base + block * config.block_size + offset


def daddr(config: SystemConfig, block: int, offset: int = 0) -> int:
    """A DRAM (volatile) address."""
    return 4096 + block * config.block_size + offset


def single_thread_trace(*ops: TraceOp) -> ProgramTrace:
    return ProgramTrace([ThreadTrace(ops)])


def conflict_addresses(config: SystemConfig, target_addr: int, count: int):
    """Persistent addresses that map to the same LLC set as ``target_addr``
    (used to force evictions of a specific block via LRU pressure)."""
    block = config.block_size
    num_sets = config.llc.num_sets
    base_block = target_addr // block
    target_set = base_block % num_sets
    addrs = []
    candidate = config.mem.persistent_base // block
    # Align candidate to the target set.
    candidate += (target_set - candidate) % num_sets
    while len(addrs) < count:
        addr = candidate * block
        if addr != (target_addr // block) * block and config.mem.is_persistent(addr):
            addrs.append(addr)
        candidate += num_sets
    return addrs
