"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.api import SCHEMES
from repro.cli import build_parser, main

FAST = ["--threads", "2", "--ops", "10", "--elements", "512"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "bogus"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "bogus"])

    def test_all_schemes_registered(self):
        assert set(SCHEMES) == {
            "bbb", "bbb-proc", "eadr", "pmem", "bsp", "bep", "none",
        }


class TestRun:
    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_run_every_scheme(self, capsys, scheme):
        rc = main(["run", "--workload", "mutateNC", "--scheme", scheme] + FAST)
        assert rc == 0
        out = capsys.readouterr().out
        assert "execution_cycles" in out
        assert "mutateNC" in out

    def test_run_reports_persist_latency(self, capsys):
        main(["run", "--workload", "mutateNC", "--scheme", "bbb"] + FAST)
        assert "persist_latency_avg" in capsys.readouterr().out

    def test_no_finalize_flag(self, capsys):
        rc = main(
            ["run", "--workload", "mutateNC", "--scheme", "bbb", "--no-finalize"]
            + FAST
        )
        assert rc == 0

    def test_json_emits_versioned_schema(self, capsys):
        rc = main(
            ["run", "--workload", "mutateNC", "--scheme", "bbb", "--json"] + FAST
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.simstats/v1"
        assert payload["num_cores"] == len(payload["cores"])

    def test_json_out_writes_file_atomically(self, capsys, tmp_path):
        out_file = tmp_path / "stats.json"
        rc = main(
            ["run", "--workload", "mutateNC", "--scheme", "bbb", "--json",
             "--out", str(out_file)] + FAST
        )
        assert rc == 0
        assert capsys.readouterr().out == ""  # JSON went to the file
        with open(out_file) as fh:
            payload = json.load(fh)
        assert payload["schema"] == "repro.simstats/v1"
        assert list(tmp_path.iterdir()) == [out_file]  # no temp residue

    def test_events_and_trace_out(self, capsys, tmp_path):
        events = tmp_path / "events.jsonl"
        trace = tmp_path / "trace.json"
        rc = main(
            ["run", "--workload", "mutateNC", "--scheme", "bbb",
             "--events", str(events), "--trace-out", str(trace)] + FAST
        )
        assert rc == 0
        assert events.exists() and trace.exists()
        # The Chrome trace must be loadable JSON with a traceEvents array.
        payload = json.loads(trace.read_text())
        assert isinstance(payload["traceEvents"], list)
        assert payload["traceEvents"]

    def test_no_observability_flags_no_files(self, capsys, tmp_path):
        rc = main(["run", "--workload", "mutateNC", "--scheme", "bbb"] + FAST)
        assert rc == 0
        assert list(tmp_path.iterdir()) == []


class TestCompare:
    def test_compare_prints_all_schemes(self, capsys):
        rc = main(["compare", "--workload", "mutateNC"] + FAST)
        assert rc == 0
        out = capsys.readouterr().out
        for scheme in ("bbb", "eadr", "pmem", "bsp"):
            assert scheme in out

    def test_compare_trace_out_per_scheme(self, capsys, tmp_path):
        trace = tmp_path / "cmp.json"
        rc = main(
            ["compare", "--workload", "mutateNC",
             "--trace-out", str(trace)] + FAST
        )
        assert rc == 0
        for scheme in SCHEMES:
            if scheme == "none":
                continue
            per_scheme = tmp_path / f"cmp.{scheme}.json"
            assert per_scheme.exists(), scheme
            json.loads(per_scheme.read_text())


class TestProfile:
    def test_smoke_reconciles(self, capsys):
        assert main(["profile", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "event/stats reconciliation" in out
        # Every reconciliation row renders "yes"; a mismatch renders "NO".
        assert "yes" in out
        assert "NO" not in out

    def test_profile_run(self, capsys):
        rc = main(["profile", "--workload", "mutateNC", "--scheme", "bbb"] + FAST)
        assert rc == 0
        out = capsys.readouterr().out
        assert "occupancy timelines" in out


class TestCrash:
    def test_bbb_sweep_consistent(self, capsys):
        rc = main(
            ["crash", "--workload", "hashmap", "--scheme", "bbb", "--sample", "5"]
            + FAST
        )
        assert rc == 0
        assert "consistent" in capsys.readouterr().out

    def test_exit_code_reflects_consistency(self, capsys):
        rc = main(
            ["crash", "--workload", "hashmap", "--scheme", "bbb", "--sample", "3"]
            + FAST
        )
        assert rc == 0


class TestStaticCommands:
    def test_energy(self, capsys):
        assert main(["energy"]) == 0
        out = capsys.readouterr().out
        assert "Mobile Class" in out and "Server Class" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "PoP location" in out and "bbPB/L1D" in out


class TestFaultsCommand:
    ARGS = [
        "faults", "--schemes", "bbb,none", "--workloads", "hashmap",
        "--random-plans", "1", "--threads", "2", "--ops", "16",
        "--elements", "128", "--jobs", "1",
    ]

    def test_small_campaign_reports_and_exits_zero(self, capsys, tmp_path):
        out_file = tmp_path / "faults.json"
        rc = main(self.ARGS + ["--out", str(out_file)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "silent-corruption" in out
        assert "battery-domain" in out
        with open(out_file) as fh:
            report = json.load(fh)
        assert report["schema"] == "repro.faultcampaign/v1"
        assert report["battery_domain"]["silent_corruption"] == 0
        assert report["units"]

    def test_unknown_scheme_rejected(self, capsys):
        rc = main(["faults", "--schemes", "bogus", "--jobs", "1"])
        assert rc == 2
        assert "unknown" in capsys.readouterr().err

    def test_checkpoint_resume(self, capsys, tmp_path):
        checkpoint = tmp_path / "campaign.ckpt"
        args = self.ARGS + ["--checkpoint", str(checkpoint)]
        assert main(args) == 0
        assert checkpoint.exists()
        first_out = capsys.readouterr().out
        # Rerun resumes from the checkpoint and reports identically.
        assert main(args) == 0
        assert capsys.readouterr().out == first_out


class TestCheckCommand:
    ARGS = [
        "check", "--scheme", "bbb", "--threads", "2", "--ops", "3",
        "--elements", "64", "--jobs", "1",
    ]

    def test_clean_scheme_reports_and_exits_zero(self, capsys, tmp_path):
        out_file = tmp_path / "check.json"
        rc = main(self.ARGS + ["--out", str(out_file)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "explored" in out
        with open(out_file) as fh:
            report = json.load(fh)
        assert report["schema"] == "repro.crashcheck/v1"
        assert report["consistent"]
        assert report["explored"] + report["pruned"] == report["checked_points"]

    def test_mutant_caught_minimized_and_replayable(self, capsys, tmp_path):
        cex_file = tmp_path / "cex.json"
        rc = main(self.ARGS + ["--mutant", "bbb-delayed-alloc",
                               "--cex-out", str(cex_file)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "minimized to" in out
        assert cex_file.exists()
        rc = main(["check", "--replay", str(cex_file)])
        assert rc == 0
        assert "REPRODUCED" in capsys.readouterr().out

    def test_unknown_scheme_rejected(self, capsys):
        rc = main(["check", "--scheme", "bogus", "--jobs", "1"])
        assert rc == 2
        assert "unknown" in capsys.readouterr().err

    def test_replay_rejects_wrong_schema_artifact(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "other/v9", "kind": "counterexample"}')
        rc = main(["check", "--replay", str(bad)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "other/v9" in err and "repro.crashcheck/v1" in err

    def test_replay_rejects_truncated_artifact(self, capsys, tmp_path):
        bad = tmp_path / "cut.json"
        bad.write_text('{"schema": "repro.crashcheck/v1", "ki')
        rc = main(["check", "--replay", str(bad)])
        assert rc == 2
        assert "truncated" in capsys.readouterr().err


class TestLitmusCommand:
    ARGS = ["litmus", "--schemes", "bbb", "--tests", "prefix-pair",
            "--jobs", "1"]

    def test_conformant_scheme_reports_and_exits_zero(self, capsys, tmp_path):
        out_file = tmp_path / "litmus.json"
        rc = main(self.ARGS + ["--no-mutants", "--out", str(out_file)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "conformant" in out
        with open(out_file) as fh:
            report = json.load(fh)
        assert report["schema"] == "repro.litmus/v1"
        assert report["kind"] == "report"
        assert report["tests"] == ["prefix-pair"]
        assert report["conformance"]["failures"] == []

    def test_mutants_caught_minimized_and_replayable(self, capsys, tmp_path):
        rc = main(self.ARGS + ["--cex-dir", str(tmp_path)])
        out = capsys.readouterr().out
        # caught mutants are the expected outcome, not a gate failure.
        assert rc == 0
        assert "caught (expected)" in out
        assert "minimized to" in out
        cexes = sorted(tmp_path.glob("litmus-cex-*.json"))
        assert cexes
        rc = main(["litmus", "--replay", str(cexes[0])])
        assert rc == 0
        assert "REPRODUCED" in capsys.readouterr().out

    def test_replay_rejects_wrong_schema_artifact(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "other/v9"}')
        rc = main(["litmus", "--replay", str(bad)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "other/v9" in err and "repro.litmus/v1" in err

    def test_replay_rejects_truncated_artifact(self, capsys, tmp_path):
        bad = tmp_path / "cut.json"
        bad.write_text('{"schema": "repro.litmus/v1", "ki')
        rc = main(["litmus", "--replay", str(bad)])
        assert rc == 2
        assert "truncated" in capsys.readouterr().err

    def test_unknown_scheme_rejected(self, capsys):
        rc = main(["litmus", "--schemes", "bogus", "--jobs", "1"])
        assert rc == 2
        assert "unknown" in capsys.readouterr().err

    def test_unknown_test_rejected(self, capsys):
        rc = main(["litmus", "--tests", "not-a-shape", "--jobs", "1"])
        assert rc == 2
        assert "not-a-shape" in capsys.readouterr().err


class TestOptCommand:
    SMALL = ["--threads", "2", "--ops", "4", "--elements", "64",
             "--jobs", "1"]

    def test_single_cell_reports_elision_and_saves_program(
        self, capsys, tmp_path
    ):
        out_file = tmp_path / "opt.trace"
        rc = main(["opt", "--workload", "hashmap", "--scheme", "bbb",
                   "--save-program", str(out_file)] + self.SMALL)
        out = capsys.readouterr().out
        assert rc == 0
        assert "100.0%" in out
        assert "verified" in out
        from repro.sim.tracefile import load_program

        program = load_program(out_file)
        assert program.total_ops > 0
        assert all(op.origin for _, _, op in program.iter_ops())

    def test_single_cell_flush_keeping_scheme(self, capsys):
        rc = main(["opt", "--workload", "hashmap", "--scheme", "pmem"]
                  + self.SMALL)
        assert rc == 0
        assert "0.0%" in capsys.readouterr().out

    def test_compare_writes_replayable_artifact(self, capsys, tmp_path):
        out_file = tmp_path / "opt.json"
        rc = main(["opt", "--compare", "--workloads", "hashmap",
                   "--schemes", "bbb,pmem", "--out", str(out_file)]
                  + self.SMALL)
        out = capsys.readouterr().out
        assert rc == 0
        assert "naive instrumentation vs persist-optimized" in out
        with open(out_file) as fh:
            report = json.load(fh)
        assert report["schema"] == "repro.optreport/v1"
        assert report["by_scheme"]["bbb"]["mean_elision_pct"] == 100.0
        rc = main(["opt", "--replay", str(out_file), "--jobs", "1"])
        assert rc == 0
        assert "REPRODUCED" in capsys.readouterr().out

    def test_replay_rejects_wrong_schema_artifact(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "other/v9"}')
        rc = main(["opt", "--replay", str(bad)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "other/v9" in err and "repro.optreport/v1" in err

    def test_unknown_scheme_rejected(self, capsys):
        rc = main(["opt", "--scheme", "bogus"] + self.SMALL)
        assert rc == 2
        assert "unknown scheme" in capsys.readouterr().err

    def test_unknown_workload_rejected_in_compare(self, capsys):
        rc = main(["opt", "--compare", "--workloads", "bogus"]
                  + self.SMALL)
        assert rc == 2
        assert "bogus" in capsys.readouterr().err


class TestTraceCommand:
    def test_trace_writes_file(self, capsys, tmp_path):
        out_file = tmp_path / "w.trace"
        rc = main(
            ["trace", "--workload", "mutateNC", "--out", str(out_file)] + FAST
        )
        assert rc == 0
        assert out_file.exists()
        from repro.sim.tracefile import load_trace

        trace = load_trace(out_file)
        assert trace.num_threads == 2


class TestTrafficCommand:
    FAST_TRAFFIC = ["--requests", "30", "--entries", "16", "--tenants", "1",
                    "--keys", "256"]

    def test_smoke_gate(self, capsys):
        assert main(["traffic", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "traffic smoke ok" in out
        assert "p999" in out

    def test_curve_in_one_command(self, capsys, tmp_path):
        """The acceptance shape: one command, the default scheme trio,
        a schema-valid report with one curve per scheme."""
        out_file = tmp_path / "traffic.json"
        rc = main(["traffic", "--loads", "1,4",
                   "--out", str(out_file)] + self.FAST_TRAFFIC)
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("bbb", "eadr", "pmem"):
            assert f"{name}:" in out
        with open(out_file) as fh:
            report = json.load(fh)
        from repro.serve import validate_traffic_report

        validate_traffic_report(report)
        assert sorted(report["curves"]) == ["bbb", "eadr", "pmem"]
        assert report["loads"] == [1.0, 4.0]

    def test_serve_alias_and_closed_loop(self, capsys):
        rc = main(["serve", "--arrival", "closed", "--clients", "4",
                   "--loads", "1,2,4"] + self.FAST_TRAFFIC)
        assert rc == 0
        out = capsys.readouterr().out
        # Closed loop has no offered-load axis: the sweep collapses.
        assert out.count("bbb:") == 1

    def test_unknown_scheme_rejected(self, capsys):
        rc = main(["traffic", "--schemes", "bogus"] + self.FAST_TRAFFIC)
        assert rc == 2
        assert "unknown" in capsys.readouterr().err.lower()


class TestDrillCommand:
    def test_smoke_gate(self, capsys):
        assert main(["drill", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "drill smoke ok" in out
        assert "acked-lost" in out
        assert "bbb-delayed-alloc" in out

    def test_custom_drill_writes_report(self, capsys, tmp_path):
        out_file = tmp_path / "drill.json"
        rc = main(["drill", "--schemes", "bbb,eadr", "--crashes", "2",
                   "--requests", "30", "--entries", "8",
                   "--out", str(out_file)])
        assert rc == 0
        with open(out_file) as fh:
            report = json.load(fh)
        from repro.serve import validate_drill_report

        validate_drill_report(report)
        assert sorted(report["per_scheme"]) == ["bbb", "eadr"]
        assert report["battery_domain"]["acked_lost"] == 0

    def test_unknown_scheme_rejected(self, capsys):
        rc = main(["drill", "--schemes", "bogus"])
        assert rc == 2
        assert "unknown" in capsys.readouterr().err.lower()

    def test_unknown_mutant_rejected(self, capsys):
        rc = main(["drill", "--schemes", "bbb", "--mutants", "bogus",
                   "--requests", "20"])
        assert rc == 2
        assert "unknown mutant" in capsys.readouterr().err
