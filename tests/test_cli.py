"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import SCHEME_FACTORIES, build_parser, main

FAST = ["--threads", "2", "--ops", "10", "--elements", "512"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "bogus"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "bogus"])

    def test_all_schemes_registered(self):
        assert set(SCHEME_FACTORIES) == {
            "bbb", "bbb-proc", "eadr", "pmem", "bsp", "bep", "none",
        }


class TestRun:
    @pytest.mark.parametrize("scheme", sorted(SCHEME_FACTORIES))
    def test_run_every_scheme(self, capsys, scheme):
        rc = main(["run", "--workload", "mutateNC", "--scheme", scheme] + FAST)
        assert rc == 0
        out = capsys.readouterr().out
        assert "execution_cycles" in out
        assert "mutateNC" in out

    def test_run_reports_persist_latency(self, capsys):
        main(["run", "--workload", "mutateNC", "--scheme", "bbb"] + FAST)
        assert "persist_latency_avg" in capsys.readouterr().out

    def test_no_finalize_flag(self, capsys):
        rc = main(
            ["run", "--workload", "mutateNC", "--scheme", "bbb", "--no-finalize"]
            + FAST
        )
        assert rc == 0


class TestCompare:
    def test_compare_prints_all_schemes(self, capsys):
        rc = main(["compare", "--workload", "mutateNC"] + FAST)
        assert rc == 0
        out = capsys.readouterr().out
        for scheme in ("bbb", "eadr", "pmem", "bsp"):
            assert scheme in out


class TestCrash:
    def test_bbb_sweep_consistent(self, capsys):
        rc = main(
            ["crash", "--workload", "hashmap", "--scheme", "bbb", "--sample", "5"]
            + FAST
        )
        assert rc == 0
        assert "consistent" in capsys.readouterr().out

    def test_exit_code_reflects_consistency(self, capsys):
        rc = main(
            ["crash", "--workload", "hashmap", "--scheme", "bbb", "--sample", "3"]
            + FAST
        )
        assert rc == 0


class TestStaticCommands:
    def test_energy(self, capsys):
        assert main(["energy"]) == 0
        out = capsys.readouterr().out
        assert "Mobile Class" in out and "Server Class" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "PoP location" in out and "bbPB/L1D" in out


class TestTraceCommand:
    def test_trace_writes_file(self, capsys, tmp_path):
        out_file = tmp_path / "w.trace"
        rc = main(
            ["trace", "--workload", "mutateNC", "--out", str(out_file)] + FAST
        )
        assert rc == 0
        assert out_file.exists()
        from repro.sim.tracefile import load_trace

        trace = load_trace(out_file)
        assert trace.num_threads == 2
