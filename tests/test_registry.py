"""Registry-completeness properties: every registered scheme is usable
end-to-end — buildable, contracted, CLI-addressable, and ordered.

These are property tests over :func:`repro.core.registry.iter_schemes`
rather than hardcoded scheme lists, so a scheme added tomorrow is held to
the same bar automatically.  They deliberately avoid asserting the *total*
number of registered schemes: plugin schemes (e.g. the one
``examples/custom_scheme.py`` registers when the example suite runs
in-process) may be present.
"""

import pytest

from repro.api import SCHEMES, Scheme, build_system
from repro.cli import build_parser
from repro.core.recovery import CONTRACT_DOCS, SCHEME_CONTRACTS, claimed_persists
from repro.core.registry import (
    CONTRACT_EXACT,
    CONTRACT_KINDS,
    MODEL_UNDECLARED,
    PERSISTENCY_MODELS,
    POP_FLUSH,
    POP_STORE_COMMIT,
    SchemeInfo,
    baseline_scheme,
    canonical_name,
    iter_schemes,
    register_scheme,
    scheme_for_class,
    scheme_info,
    scheme_names,
    unregister_scheme,
)
from repro.core.persistency import NoPersistency
from repro.sim.config import SystemConfig


def all_infos():
    return list(iter_schemes())


def builtin_infos():
    return [info for info in all_infos() if info.builtin]


@pytest.fixture
def small_config():
    return SystemConfig().scaled_for_testing()


@pytest.mark.parametrize("info", all_infos(), ids=lambda i: i.name)
class TestEverySchemeIsComplete:
    def test_builds_under_canonical_name(self, info, small_config):
        system = build_system(info.name, entries=8, config=small_config)
        assert isinstance(system.scheme, info.cls)

    def test_builds_under_every_alias(self, info, small_config):
        for alias in info.aliases:
            system = build_system(alias, entries=8, config=small_config)
            assert isinstance(system.scheme, info.cls)
            assert canonical_name(alias) == info.name

    def test_has_contract_and_doc(self, info):
        assert info.contract in CONTRACT_KINDS
        assert info.contract in CONTRACT_DOCS
        assert SCHEME_CONTRACTS[info.name] == info.contract
        for alias in info.aliases:
            assert SCHEME_CONTRACTS[alias] == info.contract

    def test_pop_location_is_valid(self, info):
        assert info.pop in (POP_STORE_COMMIT, POP_FLUSH)
        assert info.pop_at_flush == (info.pop == POP_FLUSH)

    def test_scheme_object_self_identifies(self, info, small_config):
        # The instance's ``name`` must resolve in the registry to a scheme
        # built from the same class.  (It need not equal ``info.name``:
        # bbb-proc shares BBBScheme, whose instances say "bbb".)
        system = build_system(info.name, entries=8, config=small_config)
        resolved = scheme_info(system.scheme.name)
        assert isinstance(system.scheme, resolved.cls)

    def test_battery_backed_sb_matches_class(self, info, small_config):
        system = build_system(info.name, entries=8, config=small_config)
        assert info.battery_backed_sb == bool(
            getattr(system.scheme, "battery_backed_sb", False)
        )
        assert (
            system.hierarchy.store_buffers[0].battery_backed
            == info.battery_backed_sb
        )

    def test_unexpected_kwargs_rejected(self, info, small_config):
        with pytest.raises(TypeError, match="unexpected keyword"):
            build_system(info.name, config=small_config,
                         definitely_not_a_kwarg=1)

    def test_round_trips_through_cli_scheme_parser(self, info):
        parser = build_parser()
        for name in (info.name,) + info.aliases:
            args = parser.parse_args(["run", "--scheme", name])
            assert args.scheme == name


class TestClaimedPersistSemantics:
    class FakeResult:
        committed_persists = ["committed"]
        performed_persists = ["performed"]

    @pytest.mark.parametrize("info", all_infos(), ids=lambda i: i.name)
    def test_pop_capability_selects_the_claim(self, info):
        claim = claimed_persists(info.name, self.FakeResult())
        expected = ["performed"] if info.pop_at_flush else ["committed"]
        assert claim == expected


class TestCanonicalOrder:
    def test_schemes_tuple_is_builtins_in_registry_order(self):
        assert SCHEMES == tuple(info.name for info in builtin_infos())

    def test_enum_matches_schemes_tuple(self):
        assert tuple(m.value for m in Scheme) == SCHEMES

    def test_exactly_one_comparison_baseline_among_builtins(self):
        baselines = [i for i in builtin_infos() if i.comparison_baseline]
        assert len(baselines) == 1
        assert baseline_scheme().name == baselines[0].name

    def test_scheme_names_include_aliases(self):
        with_aliases = scheme_names(include_aliases=True)
        without = scheme_names()
        assert set(without) <= set(with_aliases)
        for info in all_infos():
            for alias in info.aliases:
                assert alias in with_aliases


class TestRegistration:
    def test_unknown_scheme_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            scheme_info("bogus")

    def test_duplicate_registration_rejected_without_replace(self):
        first = builtin_infos()[0]
        with pytest.raises(ValueError, match="already registered"):
            register_scheme(
                first.name, cls=NoPersistency, contract=CONTRACT_EXACT
            )(lambda cls, entries: cls())

    def test_builtins_cannot_be_unregistered(self):
        with pytest.raises(ValueError, match="builtin"):
            unregister_scheme(builtin_infos()[0].name)

    def test_plugin_lifecycle(self, small_config):
        class TempScheme(NoPersistency):
            pass

        name = "temp-test-scheme"
        register_scheme(
            name, cls=TempScheme, contract=CONTRACT_EXACT, replace=True,
            doc="throwaway scheme for the registration lifecycle test",
        )(lambda cls, entries: cls())
        try:
            info = scheme_info(name)
            assert isinstance(info, SchemeInfo)
            assert info.doc
            assert not info.builtin
            system = build_system(name, config=small_config)
            assert isinstance(system.scheme, TempScheme)
            assert system.scheme.name == name
            assert scheme_for_class(TempScheme).name == name
            assert SCHEME_CONTRACTS[name] == CONTRACT_EXACT
        finally:
            unregister_scheme(name)
        with pytest.raises(ValueError, match="unknown scheme"):
            scheme_info(name)

    def test_invalid_contract_kind_rejected(self):
        with pytest.raises(ValueError, match="contract kind"):
            register_scheme(
                "temp-bad-contract", cls=NoPersistency, contract="vibes"
            )(lambda cls, entries: cls())

    def test_mutants_resolve_to_their_base_scheme(self):
        from repro.check.mutants import MUTANTS

        for mutant_name, (base, cls) in MUTANTS.items():
            assert scheme_info(base).name == base
            assert issubclass(cls, scheme_info(base).cls)


class TestPersistencyModelCapability:
    def test_every_builtin_declares_a_model(self):
        # The litmus battery only gates declared schemes; an undeclared
        # builtin would silently opt out of the conformance gate.
        for info in builtin_infos():
            assert info.persistency_model in PERSISTENCY_MODELS, info.name

    def test_undeclared_is_the_default_for_plugins(self):
        name = "temp-undeclared-scheme"
        register_scheme(
            name, cls=NoPersistency, contract=CONTRACT_EXACT, replace=True,
            doc="throwaway scheme for the persistency-model default test",
        )(lambda cls, entries: cls())
        try:
            assert scheme_info(name).persistency_model == MODEL_UNDECLARED
        finally:
            unregister_scheme(name)

    def test_declared_model_is_kept_on_the_info(self):
        name = "temp-declared-scheme"
        register_scheme(
            name, cls=NoPersistency, contract=CONTRACT_EXACT, replace=True,
            persistency_model=PERSISTENCY_MODELS[0],
            doc="throwaway scheme for the persistency-model plumbing test",
        )(lambda cls, entries: cls())
        try:
            info = scheme_info(name)
            assert info.persistency_model == PERSISTENCY_MODELS[0]
        finally:
            unregister_scheme(name)

    def test_invalid_model_rejected_at_registration(self):
        with pytest.raises(ValueError, match="persistency model"):
            register_scheme(
                "temp-bad-model", cls=NoPersistency, contract=CONTRACT_EXACT,
                persistency_model="vibes",
            )(lambda cls, entries: cls())
