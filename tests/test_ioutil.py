"""Atomic report output (repro.ioutil)."""

import json
import os

import pytest

from repro.ioutil import atomic_write_json, atomic_write_text


def test_atomic_write_creates_file_and_no_temp_residue(tmp_path):
    path = str(tmp_path / "out.json")
    atomic_write_json(path, {"b": 2, "a": 1})
    with open(path) as fh:
        text = fh.read()
    assert json.loads(text) == {"a": 1, "b": 2}
    assert text.endswith("\n")
    assert os.listdir(str(tmp_path)) == ["out.json"]


def test_atomic_write_replaces_existing_content(tmp_path):
    path = str(tmp_path / "out.json")
    atomic_write_json(path, {"version": 1})
    atomic_write_json(path, {"version": 2})
    with open(path) as fh:
        assert json.load(fh) == {"version": 2}
    assert os.listdir(str(tmp_path)) == ["out.json"]


def test_failed_serialization_leaves_previous_file_intact(tmp_path):
    path = str(tmp_path / "out.json")
    atomic_write_json(path, {"good": True})
    with pytest.raises(TypeError):
        atomic_write_json(path, {"bad": object()})
    with open(path) as fh:
        assert json.load(fh) == {"good": True}
    assert os.listdir(str(tmp_path)) == ["out.json"]


def test_atomic_write_text_roundtrip(tmp_path):
    path = str(tmp_path / "note.txt")
    returned = atomic_write_text(path, "hello\n")
    assert returned == path
    with open(path) as fh:
        assert fh.read() == "hello\n"
