"""Atomic report output (repro.ioutil)."""

import json
import os

import pytest

from repro.ioutil import (
    ArtifactError,
    atomic_write_json,
    atomic_write_text,
    load_versioned_json,
)


def test_atomic_write_creates_file_and_no_temp_residue(tmp_path):
    path = str(tmp_path / "out.json")
    atomic_write_json(path, {"b": 2, "a": 1})
    with open(path) as fh:
        text = fh.read()
    assert json.loads(text) == {"a": 1, "b": 2}
    assert text.endswith("\n")
    assert os.listdir(str(tmp_path)) == ["out.json"]


def test_atomic_write_replaces_existing_content(tmp_path):
    path = str(tmp_path / "out.json")
    atomic_write_json(path, {"version": 1})
    atomic_write_json(path, {"version": 2})
    with open(path) as fh:
        assert json.load(fh) == {"version": 2}
    assert os.listdir(str(tmp_path)) == ["out.json"]


def test_failed_serialization_leaves_previous_file_intact(tmp_path):
    path = str(tmp_path / "out.json")
    atomic_write_json(path, {"good": True})
    with pytest.raises(TypeError):
        atomic_write_json(path, {"bad": object()})
    with open(path) as fh:
        assert json.load(fh) == {"good": True}
    assert os.listdir(str(tmp_path)) == ["out.json"]


def test_atomic_write_text_roundtrip(tmp_path):
    path = str(tmp_path / "note.txt")
    returned = atomic_write_text(path, "hello\n")
    assert returned == path
    with open(path) as fh:
        assert fh.read() == "hello\n"


class TestLoadVersionedJson:
    """Envelope validation for versioned replay artifacts."""

    SCHEMA = "repro.test/v1"

    def write(self, tmp_path, text, name="artifact.json"):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    def test_valid_artifact_round_trips(self, tmp_path):
        path = str(tmp_path / "a.json")
        atomic_write_json(path, {"schema": self.SCHEMA, "kind": "report",
                                 "payload": [1, 2]})
        obj = load_versioned_json(path, self.SCHEMA, kind="report")
        assert obj["payload"] == [1, 2]

    def test_kind_is_optional(self, tmp_path):
        path = self.write(tmp_path, '{"schema": "repro.test/v1"}')
        assert load_versioned_json(path, self.SCHEMA) == {
            "schema": self.SCHEMA
        }

    def test_missing_file_names_the_path(self, tmp_path):
        path = str(tmp_path / "nope.json")
        with pytest.raises(ArtifactError, match="cannot read"):
            load_versioned_json(path, self.SCHEMA)

    def test_truncated_json_suggests_regeneration(self, tmp_path):
        path = self.write(tmp_path, '{"schema": "repro.te')
        with pytest.raises(ArtifactError, match="truncated"):
            load_versioned_json(path, self.SCHEMA)

    def test_empty_file_called_out_explicitly(self, tmp_path):
        path = self.write(tmp_path, "")
        with pytest.raises(ArtifactError, match="file is empty"):
            load_versioned_json(path, self.SCHEMA)

    def test_non_object_json_rejected(self, tmp_path):
        path = self.write(tmp_path, "[1, 2, 3]")
        with pytest.raises(ArtifactError, match="not an object"):
            load_versioned_json(path, self.SCHEMA)

    def test_wrong_schema_names_both_versions(self, tmp_path):
        path = self.write(tmp_path, '{"schema": "other/v9"}')
        with pytest.raises(ArtifactError, match="other/v9.*repro.test/v1"):
            load_versioned_json(path, self.SCHEMA)

    def test_missing_schema_field_called_out(self, tmp_path):
        path = self.write(tmp_path, '{"kind": "report"}')
        with pytest.raises(ArtifactError, match="no 'schema' field"):
            load_versioned_json(path, self.SCHEMA)

    def test_wrong_kind_rejected(self, tmp_path):
        path = self.write(
            tmp_path, '{"schema": "repro.test/v1", "kind": "report"}'
        )
        with pytest.raises(ArtifactError, match="expected kind"):
            load_versioned_json(path, self.SCHEMA, kind="counterexample")

    def test_every_diagnostic_names_the_file(self, tmp_path):
        for text in ("", "[1]", '{"schema": "other"}', '{"x'):
            path = self.write(tmp_path, text)
            with pytest.raises(ArtifactError, match="artifact.json"):
                load_versioned_json(path, self.SCHEMA)
