"""Tests for the persistent FIFO queue workload (repro.workloads.queue)."""

import pytest

from repro.sim.config import SystemConfig
from repro.api import build_system
from repro.sim.trace import OpKind, ProgramTrace, ThreadTrace, TraceOp
from repro.workloads.base import WorkloadSpec
from repro.workloads.queue import QueueAppend
from tests.conftest import conflict_addresses


@pytest.fixture
def cfg():
    return SystemConfig(num_cores=2).scaled_for_testing()


def make(cfg, threads=2, ops=20):
    return QueueAppend(cfg.mem, WorkloadSpec(threads=threads, ops=ops))


class TestTraceShape:
    def test_payload_before_publish(self, cfg):
        workload = make(cfg, threads=1, ops=3)
        trace = workload.build()
        tags = [op.tag for op in trace.threads[0] if op.tag]
        assert tags[:3] == ["seq:0:0", "payload:0:0", "tail:0:0"]

    def test_per_thread_rings_disjoint(self, cfg):
        workload = make(cfg)
        addrs = set()
        for tail, ring in workload.rings:
            assert tail not in addrs
            addrs.add(tail)
            assert ring not in addrs
            addrs.add(ring)

    def test_tail_seeded_to_zero(self, cfg):
        workload = make(cfg)
        for tail, _ in workload.rings:
            assert workload.initial_words[tail] == 0


class TestRecovery:
    @pytest.mark.parametrize("scheme", ["bbb", "eadr", "pmem"])
    def test_crash_sweep_consistent_under_strict_schemes(self, cfg, scheme):
        workload = make(cfg, threads=2, ops=12)
        trace = workload.build()
        checker = workload.make_checker()
        for crash_at in range(1, trace.total_ops() + 1, 9):
            system = build_system(scheme, config=cfg)
            workload.seed_media(system.nvmm_media)
            result = system.run(trace, crash_at_op=crash_at)
            ok, violations = checker(system, result)
            assert ok, (scheme, crash_at, violations)

    def test_bsp_also_consistent(self, cfg):
        """BSP persists in program order (lazily): the tail never persists
        ahead of its payload."""
        workload = make(cfg, threads=1, ops=10)
        trace = workload.build()
        checker = workload.make_checker()
        for crash_at in range(1, trace.total_ops() + 1, 5):
            system = build_system("bsp", config=cfg)
            workload.seed_media(system.nvmm_media)
            result = system.run(trace, crash_at_op=crash_at)
            ok, violations = checker(system, result)
            assert ok, (crash_at, violations)

    def test_torn_publish_under_volatile_caches(self, cfg):
        """Evict the tail block mid-stream while payload slots stay cached:
        the durable tail points past torn records."""
        workload = make(cfg, threads=1, ops=4)
        base_trace = workload.build()
        checker = workload.make_checker()
        tail_slot, _ = workload.rings[0]
        ops = list(base_trace.threads[0])
        for addr in conflict_addresses(cfg, tail_slot, cfg.llc.assoc):
            ops.append(TraceOp.load(addr))
        trace = ProgramTrace([ThreadTrace(ops)])
        torn = False
        for crash_at in range(1, len(ops) + 1):
            system = build_system("none", config=cfg)
            workload.seed_media(system.nvmm_media)
            result = system.run(trace, crash_at_op=crash_at)
            ok, violations = checker(system, result)
            if not ok:
                torn = True
                assert "torn" in violations[0]
                break
        assert torn


class TestFullRun:
    def test_complete_run_checker_passes(self, cfg):
        workload = make(cfg)
        trace = workload.build()
        checker = workload.make_checker()
        system = build_system("bbb", config=cfg)
        workload.seed_media(system.nvmm_media)
        result = system.run(trace)
        ok, violations = checker(system, result)
        assert ok, violations
        # Every tail reached the final count.
        for thread_id, (tail_slot, _) in enumerate(workload.rings):
            assert system.nvmm_media.read_word(tail_slot) == workload.spec.ops
