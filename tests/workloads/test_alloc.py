"""Unit tests for the heap allocators (repro.workloads.alloc)."""

import pytest

from repro.sim.config import MemConfig
from repro.workloads.alloc import OutOfMemoryError, PersistentHeap, VolatileHeap


@pytest.fixture
def mem():
    return MemConfig(dram_bytes=1 << 20, nvmm_bytes=1 << 20, persistent_bytes=1 << 18)


class TestPersistentHeap:
    def test_allocations_land_in_persistent_range(self, mem):
        heap = PersistentHeap(mem)
        for _ in range(10):
            assert mem.is_persistent(heap.alloc(24))

    def test_allocations_do_not_overlap(self, mem):
        heap = PersistentHeap(mem)
        regions = [(heap.alloc(24), 24) for _ in range(100)]
        seen = set()
        for addr, size in regions:
            span = set(range(addr, addr + size))
            assert not (span & seen)
            seen |= span

    def test_alignment(self, mem):
        heap = PersistentHeap(mem)
        heap.alloc(3)
        assert heap.alloc(8) % 8 == 0

    def test_free_list_reuse(self, mem):
        heap = PersistentHeap(mem)
        a = heap.alloc(32)
        heap.free(a, 32)
        assert heap.alloc(32) == a

    def test_free_different_size_not_reused(self, mem):
        heap = PersistentHeap(mem)
        a = heap.alloc(32)
        heap.free(a, 32)
        assert heap.alloc(64) != a

    def test_accounting(self, mem):
        heap = PersistentHeap(mem)
        a = heap.alloc(32)
        assert heap.allocated_bytes == 32
        heap.free(a, 32)
        assert heap.allocated_bytes == 0

    def test_out_of_memory(self, mem):
        heap = PersistentHeap(mem)
        with pytest.raises(OutOfMemoryError):
            heap.alloc(mem.persistent_bytes + 8)

    def test_invalid_sizes_rejected(self, mem):
        heap = PersistentHeap(mem)
        with pytest.raises(ValueError):
            heap.alloc(0)
        with pytest.raises(ValueError):
            heap.alloc(-8)

    def test_free_outside_range_rejected(self, mem):
        heap = PersistentHeap(mem)
        with pytest.raises(ValueError):
            heap.free(0, 8)


class TestVolatileHeap:
    def test_allocations_land_in_dram(self, mem):
        heap = VolatileHeap(mem)
        addr = heap.alloc(64)
        assert not mem.is_persistent(addr)
        assert not mem.is_nvmm(addr)

    def test_null_page_never_allocated(self, mem):
        heap = VolatileHeap(mem)
        assert heap.alloc(8) >= 4096
