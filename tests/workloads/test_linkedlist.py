"""Tests for the paper's Fig. 2/3 linked-list example
(repro.workloads.linkedlist)."""

import pytest

from repro.sim.config import SystemConfig
from repro.api import build_system
from repro.sim.trace import OpKind
from repro.workloads.base import WorkloadSpec
from repro.workloads.linkedlist import LinkedListAppend
from tests.conftest import conflict_addresses
from repro.sim.trace import ProgramTrace, ThreadTrace, TraceOp


@pytest.fixture
def cfg():
    return SystemConfig(num_cores=2).scaled_for_testing()


def make_workload(cfg, ops=20, isolate_blocks=False):
    return LinkedListAppend(
        cfg.mem, WorkloadSpec(threads=1, ops=ops), isolate_blocks=isolate_blocks
    )


class TestTraceShapes:
    def test_fig2_has_no_persist_instructions(self, cfg):
        trace = make_workload(cfg).build()
        kinds = {op.kind for t in trace.threads for op in t}
        assert OpKind.FLUSH not in kinds
        assert OpKind.FENCE not in kinds

    def test_fig3_inserts_flush_fence_pairs(self, cfg):
        workload = make_workload(cfg, ops=5)
        trace = workload.build_with_barriers()
        thread = trace.threads[0]
        assert thread.count(OpKind.FLUSH) == 3 * 5   # node(x2) + head per append
        assert thread.count(OpKind.FENCE) == 2 * 5   # two barriers per append

    def test_append_links_to_previous_head(self, cfg):
        workload = make_workload(cfg, ops=3)
        workload.build()
        nodes = list(workload.model_nodes.items())
        # First node's next is null, later nodes chain backwards.
        assert nodes[0][1][1] == 0
        assert nodes[1][1][1] == nodes[0][0]
        assert nodes[2][1][1] == nodes[1][0]


class TestRecoveryUnderClosedGapSchemes:
    @pytest.mark.parametrize("scheme", ["bbb", "eadr", "pmem"])
    def test_fig2_code_is_crash_safe_without_barriers(self, cfg, scheme):
        """The paper's headline: the *plain* Fig. 2 code is crash consistent
        under BBB (and eADR), with no flushes or fences."""
        workload = make_workload(cfg, ops=15)
        trace = workload.build()
        checker = workload.make_checker()
        for crash_at in range(1, trace.total_ops() + 1, 7):
            system = build_system(scheme, config=cfg)
            result = system.run(trace, crash_at_op=crash_at)
            ok, violations = checker(system, result)
            assert ok, (scheme, crash_at, violations)

    def test_fig3_code_is_crash_safe_under_pmem(self, cfg):
        """With the explicit barriers of Fig. 3, even ADR-only PMEM is
        safe at every crash point."""
        workload = make_workload(cfg, ops=10)
        trace = workload.build_with_barriers()
        checker = workload.make_checker()
        for crash_at in range(1, trace.total_ops() + 1, 5):
            system = build_system("none", config=cfg)  # plain ADR, honours explicit flushes
            result = system.run(trace, crash_at_op=crash_at)
            ok, violations = checker(system, result)
            assert ok, (crash_at, violations)


class TestFailureWithoutBBB:
    def test_fig2_breaks_under_volatile_caches_with_eviction_pressure(self, cfg):
        """Section II-A's corruption, made concrete: evict the head-pointer
        block (persisting the head in replacement order) while the node
        initialisation is still cached, then crash.  Walking the durable
        list reaches an uninitialised node."""
        workload = make_workload(cfg, ops=4, isolate_blocks=True)
        base_trace = workload.build()
        checker = workload.make_checker()
        thread = list(base_trace.threads[0])
        # Append eviction pressure on the head slot's LLC set.
        for addr in conflict_addresses(cfg, workload.head_slot, cfg.llc.assoc):
            thread.append(TraceOp.load(addr))
        trace = ProgramTrace([ThreadTrace(thread)])

        violated = False
        for crash_at in range(len(thread) - cfg.llc.assoc, len(thread) + 1):
            system = build_system("none", config=cfg)
            result = system.run(trace, crash_at_op=crash_at)
            ok, violations = checker(system, result)
            if not ok:
                violated = True
                assert "new node will be lost" in violations[0]
                break
        assert violated, "expected replacement-order persistence to corrupt the list"

    def test_same_pressure_is_safe_under_bbb(self, cfg):
        workload = make_workload(cfg, ops=4, isolate_blocks=True)
        base_trace = workload.build()
        checker = workload.make_checker()
        thread = list(base_trace.threads[0])
        for addr in conflict_addresses(cfg, workload.head_slot, cfg.llc.assoc):
            thread.append(TraceOp.load(addr))
        trace = ProgramTrace([ThreadTrace(thread)])
        for crash_at in range(1, len(thread) + 1):
            system = build_system("bbb", config=cfg)
            result = system.run(trace, crash_at_op=crash_at)
            ok, violations = checker(system, result)
            assert ok, (crash_at, violations)
