"""Tests for the Table IV workload suite (repro.workloads)."""

import pytest

from repro.sim.config import SystemConfig
from repro.api import build_system
from repro.sim.trace import OpKind
from repro.workloads.base import WORKLOAD_NAMES, WorkloadSpec, registry


@pytest.fixture
def cfg():
    return SystemConfig(num_cores=4).scaled_for_testing()


@pytest.fixture
def spec():
    return WorkloadSpec(threads=4, ops=40, elements=1024, seed=7)


class TestRegistry:
    def test_all_table4_workloads_present(self, cfg, spec):
        assert set(registry(cfg.mem, spec)) == set(WORKLOAD_NAMES)

    def test_names_match_keys(self, cfg, spec):
        for key, workload in registry(cfg.mem, spec).items():
            assert workload.name == key


class TestTraceGeneration:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_builds_one_thread_per_spec_thread(self, cfg, spec, name):
        trace = registry(cfg.mem, spec)[name].build()
        assert trace.num_threads == spec.threads

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_generates_persisting_stores(self, cfg, spec, name):
        workload = registry(cfg.mem, spec)[name]
        trace = workload.build()
        assert workload.p_store_fraction(trace) > 0

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_deterministic_for_seed(self, cfg, spec, name):
        t1 = registry(cfg.mem, spec)[name].build()
        t2 = registry(cfg.mem, spec)[name].build()
        ops1 = [(o.kind, o.addr, o.value) for t in t1.threads for o in t]
        ops2 = [(o.kind, o.addr, o.value) for t in t2.threads for o in t]
        assert ops1 == ops2

    @pytest.mark.parametrize(
        "name,paper_pct,tolerance",
        [
            ("rtree", 15.5, 8.0),
            ("ctree", 18.9, 8.0),
            ("hashmap", 6.0, 3.0),
            ("mutateNC", 23.8, 6.0),
            ("mutateC", 23.8, 6.0),
            ("swapNC", 23.8, 6.0),
            ("swapC", 23.8, 6.0),
        ],
    )
    def test_p_store_fraction_near_paper(self, cfg, spec, name, paper_pct, tolerance):
        """Measured %P-Stores should land near Table IV's figures."""
        workload = registry(cfg.mem, spec)[name]
        measured = workload.p_store_fraction(workload.build()) * 100
        assert abs(measured - paper_pct) <= tolerance, (
            f"{name}: measured {measured:.1f}% vs paper {paper_pct}%"
        )


class TestConflictStructure:
    def test_nc_threads_touch_disjoint_regions(self, cfg, spec):
        workload = registry(cfg.mem, spec)["mutateNC"]
        trace = workload.build()
        footprints = []
        for thread in trace.threads:
            addrs = {
                op.addr
                for op in thread
                if op.kind is OpKind.STORE and cfg.mem.is_persistent(op.addr)
            }
            footprints.append(addrs)
        for i in range(len(footprints)):
            for j in range(i + 1, len(footprints)):
                assert not (footprints[i] & footprints[j])

    def test_conflicting_threads_overlap(self, cfg):
        spec = WorkloadSpec(threads=4, ops=200, elements=64, seed=7)
        workload = registry(cfg.mem, spec)["mutateC"]
        trace = workload.build()
        blocks = []
        for thread in trace.threads:
            blocks.append(
                {
                    op.addr & ~63
                    for op in thread
                    if op.kind is OpKind.STORE and cfg.mem.is_persistent(op.addr)
                }
            )
        assert blocks[0] & blocks[1]


class TestMediaSeeding:
    def test_prepopulated_workloads_declare_initial_state(self, cfg, spec):
        reg = registry(cfg.mem, spec)
        assert reg["ctree"].initial_words      # prepopulated BSTs
        assert reg["rtree"].initial_words      # skeleton tree
        assert not reg["mutateNC"].initial_words  # arrays start zeroed

    def test_seed_media_installs_words(self, cfg, spec):
        workload = registry(cfg.mem, spec)["ctree"]
        system = build_system("bbb", config=cfg)
        count = workload.seed_media(system.nvmm_media)
        assert count == len(workload.initial_words)
        addr, value = next(iter(workload.initial_words.items()))
        assert system.nvmm_media.read_word(addr, 8) == value

    def test_seed_media_does_not_count_as_window_writes(self, cfg, spec):
        workload = registry(cfg.mem, spec)["ctree"]
        system = build_system("bbb", config=cfg)
        workload.seed_media(system.nvmm_media)
        assert system.nvmm_media.total_writes == 0
        assert system.stats.nvmm_writes == 0

    def test_ctree_checker_sees_prepopulated_tree(self, cfg):
        """With seeded media the durable tree is non-trivial even before
        any in-trace insert persists."""
        spec = WorkloadSpec(threads=2, ops=5, elements=512, seed=3)
        workload = registry(cfg.mem, spec)["ctree"]
        trace = workload.build()
        checker = workload.make_checker()
        system = build_system("bbb", config=cfg, entries=64)
        workload.seed_media(system.nvmm_media)
        result = system.run(trace, crash_at_op=1)
        ok, violations = checker(system, result)
        assert ok, violations
        # The prepopulated root itself is durable and walkable.
        assert system.nvmm_media.read_word(workload.root_slots[0], 8) != 0


class TestRecoveryCheckers:
    @pytest.mark.parametrize("name", ["hashmap", "ctree", "rtree"])
    def test_checker_passes_on_complete_bbb_run(self, cfg, name):
        spec = WorkloadSpec(threads=2, ops=30, elements=512, seed=3)
        workload = registry(cfg.mem, spec)[name]
        trace = workload.build()
        checker = workload.make_checker()
        system = build_system("bbb", config=cfg, entries=64)
        workload.seed_media(system.nvmm_media)
        result = system.run(trace)  # finalize drains everything
        ok, violations = checker(system, result)
        assert ok, violations

    @pytest.mark.parametrize("name", ["hashmap", "ctree", "rtree"])
    def test_checker_passes_on_bbb_crash(self, cfg, name):
        spec = WorkloadSpec(threads=2, ops=20, elements=512, seed=3)
        workload = registry(cfg.mem, spec)[name]
        trace = workload.build()
        checker = workload.make_checker()
        for crash_at in (5, trace.total_ops() // 2, trace.total_ops() - 1):
            system = build_system("bbb", config=cfg, entries=64)
            workload.seed_media(system.nvmm_media)
            result = system.run(trace, crash_at_op=crash_at)
            ok, violations = checker(system, result)
            assert ok, (crash_at, violations)

    def test_array_workloads_have_no_structural_checker(self, cfg, spec):
        assert registry(cfg.mem, spec)["mutateNC"].make_checker() is None


class TestSimulationSmoke:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_runs_to_completion_under_bbb(self, cfg, name):
        spec = WorkloadSpec(threads=4, ops=15, elements=256, seed=1)
        workload = registry(cfg.mem, spec)[name]
        system = build_system("bbb", config=cfg)
        result = system.run(workload.build())
        assert result.stats.total_persisting_stores > 0
        assert result.execution_cycles > 0


class TestConflictingWorkloadCoherence:
    def test_conflicting_workloads_move_blocks_between_bbpbs(self, cfg):
        """mutateC's cross-thread conflicts exercise the Fig. 6(a)/(b)
        move-without-drain path; the NC variant does not."""
        spec = WorkloadSpec(threads=4, ops=120, elements=64, seed=5)
        conflicting = registry(cfg.mem, spec)["mutateC"]
        system_c = build_system("bbb", config=cfg)
        system_c.run(conflicting.build(), finalize=False)
        assert system_c.stats.bbpb_moves > 0

        non_conflicting = registry(cfg.mem, spec)["mutateNC"]
        system_nc = build_system("bbb", config=cfg)
        system_nc.run(non_conflicting.build(), finalize=False)
        assert system_nc.stats.bbpb_moves == 0

    def test_invariants_hold_under_conflicts(self, cfg):
        from repro.core.invariants import check_all

        spec = WorkloadSpec(threads=4, ops=80, elements=64, seed=5)
        workload = registry(cfg.mem, spec)["swapC"]
        system = build_system("bbb", config=cfg)
        system.run(workload.build(), finalize=False)
        check_all(system)

    def test_eviction_pressure_triggers_forced_drains_and_drops(self, cfg):
        spec = WorkloadSpec(threads=4, ops=200, elements=8192, seed=5)
        workload = registry(cfg.mem, spec)["mutateNC"]
        system = build_system("bbb", config=cfg, entries=1024)  # big buffer: blocks stay resident
        system.run(workload.build(), finalize=False)
        assert system.stats.bbpb_forced_drains > 0
        assert system.stats.llc_writebacks_dropped > 0
