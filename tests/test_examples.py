"""Smoke tests: every example script runs to completion and prints its
headline conclusions.  (Examples are part of the public deliverable; these
tests keep them from rotting.)"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=()):  # -> captured stdout via capsys at call site
    sys_argv = sys.argv
    sys.argv = [str(EXAMPLES / name), *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = sys_argv


class TestExamplesRun:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "BBB vs eADR" in out
        assert "bbPB" in out

    def test_battery_sizing(self, capsys):
        run_example("battery_sizing.py")
        out = capsys.readouterr().out
        assert "Table X" in out
        assert "Mobile Class" in out and "Server Class" in out

    def test_linked_list_crash(self, capsys):
        run_example("linked_list_crash.py")
        out = capsys.readouterr().out
        assert "inconsistent" in out
        # BBB's sweep reports zero inconsistencies.
        assert "0 inconsistent" in out

    def test_relaxed_consistency(self, capsys):
        run_example("relaxed_consistency.py")
        out = capsys.readouterr().out
        assert "battery-backed store buffer" in out
        assert "volatile store buffer" in out

    @pytest.mark.slow
    def test_durable_transactions(self, capsys):
        run_example("durable_transactions.py")
        out = capsys.readouterr().out
        assert "0/" in out  # BBB's sweep has zero violations
        assert "violate the invariant" in out

    @pytest.mark.slow
    def test_scheme_comparison_quick(self, capsys):
        run_example("scheme_comparison.py", argv=["--quick"])
        out = capsys.readouterr().out
        assert "Execution time normalized to eADR" in out
        assert "BSP" in out

    def test_paper_scale_small(self, capsys):
        run_example("paper_scale.py", argv=["--small"])
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "write ratio" in out

    def test_custom_scheme(self, capsys):
        # The pluggability proof: a scheme registered from outside
        # src/repro runs through build, the crash checker, a fault
        # campaign, degraded-mode serving, and the persist optimizer.
        # (Its registration is idempotent, so running the example twice
        # in one process is safe.)
        with pytest.raises(SystemExit) as exc:
            run_example("custom_scheme.py")
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "registered scheme 'bbb-nocoalesce'" in out
        assert "degraded serving: completed 30/30" in out
        assert "correctly refused degraded serving" in out
        assert "100.0% of flush/fence instrumentation elided" in out
        assert ("custom scheme ran through build, check, faults, "
                "degraded serving, and the persist optimizer: OK") in out
