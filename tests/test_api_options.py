"""RunOptions surface: the typed run-wiring value, the deprecation shim
for the old bare keyword arguments, and the options-vs-legacy conflict."""

import warnings

import pytest

from repro.api import DEFAULT_RUN_OPTIONS, RunOptions, build_system
from repro.obs.bus import EventBus
from repro.workloads.base import WorkloadSpec, make_workload


def _trace():
    system = build_system("bbb", entries=8)
    cfg = system.config
    wl = make_workload("mutateNC", cfg.mem,
                       WorkloadSpec(threads=2, ops=10, elements=256, seed=1))
    return wl.build()


def test_run_options_defaults_are_the_plain_run():
    opts = RunOptions()
    assert opts.mode == "auto"
    assert not opts.bus.enabled
    assert not opts.fault_injector.enabled
    assert opts == DEFAULT_RUN_OPTIONS


def test_run_options_is_frozen_and_replace_derives():
    opts = RunOptions(reorder_seed=3)
    with pytest.raises(AttributeError):
        opts.mode = "object"
    derived = opts.replace(mode="object")
    assert derived.reorder_seed == 3 and derived.mode == "object"
    assert opts.mode == "auto"  # original untouched


def test_run_options_rejects_unknown_mode():
    with pytest.raises(ValueError, match="mode"):
        RunOptions(mode="warp")


def test_legacy_kwargs_warn_and_still_work():
    bus = EventBus()
    with pytest.warns(DeprecationWarning, match="options=RunOptions"):
        system = build_system("bbb", entries=8, bus=bus)
    assert system.bus is bus
    result = system.run(_trace())
    assert result.execution_cycles > 0


def test_legacy_kwargs_equal_options_spelling():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = build_system("bbb", entries=8, reorder_seed=9,
                              mode="object")
    typed = build_system("bbb", entries=8,
                         options=RunOptions(reorder_seed=9, mode="object"))
    a = legacy.run(_trace())
    b = typed.run(_trace())
    assert a.stats.to_dict() == b.stats.to_dict()


def test_mixing_options_and_legacy_kwargs_is_an_error():
    with pytest.raises(TypeError, match="options="):
        build_system("bbb", options=RunOptions(), mode="object")


def test_options_spelling_raises_no_warning():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        build_system("bbb", entries=8, options=RunOptions(mode="object"))
