"""Golden-fingerprint equivalence for the streaming ingestion path.

Feeding a workload's per-thread op streams incrementally through
``System.run_stream`` (chunked pulls on engine backpressure) must produce
bit-identical ``SimStats`` and persist records to materializing the same
ops into a ``ProgramTrace`` and calling ``System.run`` — for every
registered builtin scheme, across chunk sizes, in both interpreter modes,
and under relaxed consistency.  The manual-session tests pin the
``EngineStream`` protocol itself (starve/feed/advance/idle/end).
"""

import pytest

from repro.analysis.bench import fingerprint_run
from repro.analysis.experiments import default_sim_config
from repro.api import RunOptions, build_system
from repro.core.registry import BBB, CONTRACT_EPOCH, iter_schemes
from repro.sim.config import ConsistencyModel
from repro.sim.trace import TraceOp, with_epochs
from repro.workloads.base import (WorkloadSpec, build_cached,
                                  seed_media_words)

SPEC = WorkloadSpec(threads=2, ops=25, elements=512, seed=13)
SCHEMES = [info for info in iter_schemes() if info.builtin]


def _system(info, mode="auto", config=None):
    kwargs = {"entries": 8} if info.has_persist_buffer else {}
    return build_system(info.name, config=config or default_sim_config(),
                        options=RunOptions(mode=mode), **kwargs)


def _prepared(info, workload, config=None):
    cfg = config or default_sim_config()
    trace, initial_words = build_cached(workload, cfg.mem, SPEC)
    if info.contract == CONTRACT_EPOCH:
        trace = with_epochs(trace, every_n_stores=8)
    return trace, initial_words


def _run_materialized(info, trace, initial_words, mode="auto", config=None):
    system = _system(info, mode, config)
    seed_media_words(system.nvmm_media, initial_words)
    return system.run(trace, finalize=False)


def _run_streamed(info, trace, initial_words, mode="auto", chunk=7,
                  config=None):
    system = _system(info, mode, config)
    seed_media_words(system.nvmm_media, initial_words)
    streams = [iter(thread.ops) for thread in trace.threads]
    return system.run_stream(streams, chunk=chunk, finalize=False)


@pytest.mark.parametrize("info", SCHEMES, ids=lambda i: i.name)
@pytest.mark.parametrize("workload", ["hashmap", "mutateC"])
def test_streamed_matches_materialized(info, workload):
    trace, words = _prepared(info, workload)
    ref = _run_materialized(info, trace, words)
    streamed = _run_streamed(info, trace, words)
    assert fingerprint_run(ref) == fingerprint_run(streamed)


@pytest.mark.parametrize("chunk", [1, 3, 64, 10_000])
def test_chunk_size_is_invisible(chunk):
    """The pull granularity must not leak into results."""
    info = next(i for i in SCHEMES if i.name == BBB)
    trace, words = _prepared(info, "hashmap")
    ref = _run_materialized(info, trace, words)
    streamed = _run_streamed(info, trace, words, chunk=chunk)
    assert fingerprint_run(ref) == fingerprint_run(streamed)


@pytest.mark.parametrize("mode", ["object", "columnar"])
def test_streamed_interpreter_modes_agree(mode):
    info = next(i for i in SCHEMES if i.name == BBB)
    trace, words = _prepared(info, "hashmap")
    ref = _run_materialized(info, trace, words, mode="object")
    streamed = _run_streamed(info, trace, words, mode=mode)
    assert fingerprint_run(ref) == fingerprint_run(streamed)


def test_streamed_batched_path_engages():
    """The columnar stream pump must actually take the batched path for
    at least one scheme, or the mode test above is vacuous."""
    engaged = []
    for info in SCHEMES:
        trace, words = _prepared(info, "hashmap")
        system = _system(info, "columnar")
        seed_media_words(system.nvmm_media, words)
        system.run_stream([iter(t.ops) for t in trace.threads],
                          finalize=False)
        engaged.append(system.engine.batch_counters["phases"] > 0)
    assert any(engaged)


def test_streamed_relaxed_consistency():
    import dataclasses

    info = next(i for i in SCHEMES if i.name == BBB)
    cfg = dataclasses.replace(default_sim_config(),
                              consistency=ConsistencyModel.RELAXED)
    trace, words = _prepared(info, "hashmap", config=cfg)
    ref = _run_materialized(info, trace, words, config=cfg)
    streamed = _run_streamed(info, trace, words, config=cfg)
    assert fingerprint_run(ref) == fingerprint_run(streamed)


# ----------------------------------------------------------------------
# The EngineStream protocol itself
# ----------------------------------------------------------------------

def _bbb_session():
    info = next(i for i in SCHEMES if i.name == BBB)
    system = _system(info)
    return system, system.stream()


def test_pump_starves_on_the_minimum_clock_core():
    _, session = _bbb_session()
    session.feed(0, [TraceOp.compute(100)])
    # Core 1 (clock 0) blocks global progress until fed/ended/idled.
    needy = session.pump()
    assert needy is not None
    assert session.clock(needy) <= min(
        session.clock(c) for c in range(session.num_cores)
    )


def test_starved_clock_is_completion_cycle():
    """After a starve, the fed core's clock is exactly the completion
    cycle of its last op — the latency basis the serving layer uses."""
    _, session = _bbb_session()
    for core in range(1, session.num_cores):
        session.end(core)
    session.feed(0, [TraceOp.compute(25)])
    assert session.pump() == 0
    assert session.clock(0) == 25
    session.feed(0, [TraceOp.compute(10)])
    assert session.pump() == 0
    assert session.clock(0) == 35


def test_advance_moves_only_forward():
    _, session = _bbb_session()
    session.advance(0, 500)
    assert session.clock(0) == 500
    session.advance(0, 100)  # no-op: never rewinds
    assert session.clock(0) == 500
    session.feed(0, [TraceOp.compute(1)])
    with pytest.raises(ValueError):
        session.advance(0, 1000)  # buffered ops pin the clock


def test_idle_requires_empty_queue_and_feed_rearms():
    _, session = _bbb_session()
    session.feed(0, [TraceOp.compute(5)])
    with pytest.raises(ValueError):
        session.idle(0)
    for core in range(1, session.num_cores):
        session.idle(core)
    assert session.pump() == 0  # idle cores no longer starve the pump
    session.feed(1, [TraceOp.compute(5)])  # re-arms core 1
    session.end(0)
    assert session.pump() == 1


def test_finish_is_terminal():
    system, session = _bbb_session()
    session.feed(0, [TraceOp.compute(5)])
    result = session.finish()
    assert result.execution_cycles >= 5
    assert session.finish() is result  # idempotent
    with pytest.raises(RuntimeError):
        session.pump()
    with pytest.raises(RuntimeError):
        session.feed(0, [TraceOp.compute(1)])


def test_feed_after_end_rejected():
    _, session = _bbb_session()
    session.end(0)
    with pytest.raises(ValueError):
        session.feed(0, [TraceOp.compute(1)])
