"""Unit tests for system assembly and factories (repro.sim.system)."""

import pytest

from repro.core.persistency import BBBScheme, BEP, EADR, NoPersistency, StrictPMEM
from repro.sim.system import (
    System,
    bbb,
    bbb_processor_side,
    bep,
    eadr,
    no_persistency,
    pmem_strict,
)
from repro.sim.trace import TraceOp
from tests.conftest import paddr, single_thread_trace


class TestFactories:
    def test_default_system_uses_bbb(self):
        assert isinstance(System().scheme, BBBScheme)

    def test_eadr(self, small_config):
        assert isinstance(eadr(small_config).scheme, EADR)

    def test_bbb_entries_and_threshold(self, small_config):
        system = bbb(small_config, entries=8, drain_threshold=0.5)
        assert system.scheme.bbb_config.entries == 8
        assert system.scheme.bbb_config.drain_threshold == 0.5

    def test_processor_side(self, small_config):
        system = bbb_processor_side(small_config, entries=8)
        assert isinstance(system.scheme, BBBScheme)
        assert not system.scheme.bbb_config.memory_side

    def test_pmem(self, small_config):
        assert isinstance(pmem_strict(small_config).scheme, StrictPMEM)

    def test_bep(self, small_config):
        system = bep(small_config, entries=16)
        assert isinstance(system.scheme, BEP)
        assert system.scheme.entries == 16

    def test_no_persistency(self, small_config):
        assert isinstance(no_persistency(small_config).scheme, NoPersistency)


class TestAssembly:
    def test_scheme_attached_to_hierarchy(self, small_config):
        system = bbb(small_config)
        assert system.scheme.hierarchy is system.hierarchy
        assert len(system.scheme.buffers) == small_config.num_cores

    def test_stats_shared(self, small_config):
        system = bbb(small_config)
        assert system.stats is system.hierarchy.stats
        assert system.stats.num_cores == small_config.num_cores

    def test_nvmm_media_accessor(self, small_config):
        system = bbb(small_config)
        assert system.nvmm_media is system.hierarchy.nvmm.media

    def test_end_to_end_run(self, small_config):
        system = bbb(small_config)
        trace = single_thread_trace(
            TraceOp.store(paddr(small_config, 0), 0xAB),
            TraceOp.load(paddr(small_config, 0)),
        )
        result = system.run(trace)
        assert result.stats.total_stores == 1
        assert system.nvmm_media.read_word(paddr(small_config, 0), 8) == 0xAB

    def test_battery_backed_sb_only_for_bbb_and_eadr(self, small_config):
        assert bbb(small_config).hierarchy.store_buffers[0].battery_backed
        assert eadr(small_config).hierarchy.store_buffers[0].battery_backed
        assert not pmem_strict(small_config).hierarchy.store_buffers[0].battery_backed
        assert not no_persistency(small_config).hierarchy.store_buffers[0].battery_backed
