"""Unit tests for system assembly and the construction API
(repro.sim.system + repro.api)."""

import warnings

import pytest

from repro.api import SCHEMES, RunOptions, Scheme, build_system
from repro.core.bsp import BSP
from repro.core.persistency import BBBScheme, BEP, EADR, NoPersistency, StrictPMEM
from repro.obs.bus import NULL_BUS, EventBus
from repro.sim.system import SCHEME_FACTORIES, System
from repro.sim.trace import TraceOp
from tests.conftest import paddr, single_thread_trace


class TestBuildSystem:
    def test_default_system_uses_bbb(self):
        assert isinstance(System().scheme, BBBScheme)

    def test_eadr(self, small_config):
        assert isinstance(build_system("eadr", config=small_config).scheme, EADR)

    def test_bbb_entries_and_threshold(self, small_config):
        system = build_system(
            "bbb", entries=8, config=small_config, drain_threshold=0.5
        )
        assert system.scheme.bbb_config.entries == 8
        assert system.scheme.bbb_config.drain_threshold == 0.5

    def test_processor_side(self, small_config):
        system = build_system("bbb-proc", entries=8, config=small_config)
        assert isinstance(system.scheme, BBBScheme)
        assert not system.scheme.bbb_config.memory_side

    def test_pmem(self, small_config):
        scheme = build_system("pmem", config=small_config).scheme
        assert isinstance(scheme, StrictPMEM)

    def test_bep(self, small_config):
        system = build_system("bep", entries=16, config=small_config)
        assert isinstance(system.scheme, BEP)
        assert system.scheme.entries == 16

    def test_bsp(self, small_config):
        system = build_system("bsp", entries=16, config=small_config)
        assert isinstance(system.scheme, BSP)

    def test_no_persistency(self, small_config):
        scheme = build_system("none", config=small_config).scheme
        assert isinstance(scheme, NoPersistency)

    def test_scheme_enum_accepted(self, small_config):
        system = build_system(Scheme.BBB, config=small_config)
        assert isinstance(system.scheme, BBBScheme)

    def test_schemes_tuple_matches_enum(self):
        assert set(SCHEMES) == {s.value for s in Scheme}
        assert set(SCHEMES) == {
            "bbb", "bbb-proc", "eadr", "pmem", "bsp", "bep", "none",
        }

    def test_unknown_scheme_rejected(self, small_config):
        with pytest.raises(ValueError, match="unknown scheme"):
            build_system("bogus", config=small_config)

    def test_unknown_kwarg_rejected(self, small_config):
        with pytest.raises(TypeError, match="unexpected keyword"):
            build_system("eadr", config=small_config, bogus=1)

    def test_bus_reaches_the_system(self, small_config):
        bus = EventBus()
        system = build_system("bbb", config=small_config,
                              options=RunOptions(bus=bus))
        assert system.bus is bus
        assert system.hierarchy.bus is bus

    def test_default_bus_is_null(self, small_config):
        system = build_system("bbb", config=small_config)
        assert system.bus is NULL_BUS
        assert not system.bus.enabled


class TestDeprecatedFactories:
    """The old per-scheme factories still work, but warn."""

    @pytest.mark.parametrize("name", sorted(SCHEME_FACTORIES))
    def test_every_factory_warns_and_builds(self, small_config, name):
        with pytest.warns(DeprecationWarning, match="build_system"):
            system = SCHEME_FACTORIES[name](small_config)
        assert isinstance(system, System)

    def test_bbb_shim_forwards_kwargs(self, small_config):
        from repro.sim.system import bbb

        with pytest.warns(DeprecationWarning):
            system = bbb(small_config, entries=8, drain_threshold=0.5)
        assert system.scheme.bbb_config.entries == 8
        assert system.scheme.bbb_config.drain_threshold == 0.5

    def test_processor_side_shim_forwards_kwargs(self, small_config):
        from repro.sim.system import bbb_processor_side

        with pytest.warns(DeprecationWarning):
            system = bbb_processor_side(
                small_config, entries=8, coalesce_consecutive=False
            )
        assert not system.scheme.bbb_config.memory_side
        assert not system.scheme.bbb_config.proc_coalesce_consecutive

    def test_shim_matches_build_system(self, small_config):
        from repro.sim.system import bep

        with pytest.warns(DeprecationWarning):
            old = bep(small_config, entries=16)
        new = build_system("bep", entries=16, config=small_config)
        assert type(old.scheme) is type(new.scheme)
        assert old.scheme.entries == new.scheme.entries


class TestAssembly:
    def test_scheme_attached_to_hierarchy(self, small_config):
        system = build_system("bbb", config=small_config)
        assert system.scheme.hierarchy is system.hierarchy
        assert len(system.scheme.buffers) == small_config.num_cores

    def test_stats_shared(self, small_config):
        system = build_system("bbb", config=small_config)
        assert system.stats is system.hierarchy.stats
        assert system.stats.num_cores == small_config.num_cores

    def test_nvmm_media_accessor(self, small_config):
        system = build_system("bbb", config=small_config)
        assert system.nvmm_media is system.hierarchy.nvmm.media

    def test_end_to_end_run(self, small_config):
        system = build_system("bbb", config=small_config)
        trace = single_thread_trace(
            TraceOp.store(paddr(small_config, 0), 0xAB),
            TraceOp.load(paddr(small_config, 0)),
        )
        result = system.run(trace)
        assert result.stats.total_stores == 1
        assert system.nvmm_media.read_word(paddr(small_config, 0), 8) == 0xAB

    def test_battery_backed_sb_only_for_bbb_and_eadr(self, small_config):
        def sb0(name):
            return build_system(
                name, config=small_config
            ).hierarchy.store_buffers[0]

        assert sb0("bbb").battery_backed
        assert sb0("eadr").battery_backed
        assert not sb0("pmem").battery_backed
        assert not sb0("none").battery_backed

    def test_internal_construction_does_not_warn(self, small_config):
        """build_system must not route through the deprecated shims."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for name in SCHEMES:
                build_system(name, config=small_config)
