"""Unit tests for configuration dataclasses (repro.sim.config)."""

import dataclasses

import pytest

from repro.sim.config import (
    BBBConfig,
    CacheConfig,
    ConsistencyModel,
    DrainPolicy,
    MemConfig,
    SystemConfig,
    TABLE_III_CONFIG,
)


class TestCacheConfig:
    def test_derived_geometry(self):
        cfg = CacheConfig(128 << 10, 8, 64)
        assert cfg.num_sets == 256
        assert cfg.num_blocks == 2048

    def test_rejects_unbalanced_size(self):
        with pytest.raises(ValueError):
            CacheConfig(100, 3, 64)


class TestMemConfig:
    def test_address_map_layout(self):
        mem = MemConfig(dram_bytes=1 << 20, nvmm_bytes=1 << 20, persistent_bytes=1 << 19)
        assert mem.nvmm_base == 1 << 20
        assert mem.nvmm_limit == 2 << 20
        assert mem.persistent_base == (2 << 20) - (1 << 19)

    def test_region_predicates(self):
        mem = MemConfig(dram_bytes=1 << 20, nvmm_bytes=1 << 20, persistent_bytes=1 << 19)
        assert not mem.is_nvmm(0)
        assert mem.is_nvmm(mem.nvmm_base)
        assert not mem.is_nvmm(mem.nvmm_limit)
        assert not mem.is_persistent(mem.nvmm_base)   # non-persistent NVMM
        assert mem.is_persistent(mem.persistent_base)

    def test_persistent_larger_than_nvmm_rejected(self):
        with pytest.raises(ValueError):
            MemConfig(nvmm_bytes=1 << 20, persistent_bytes=1 << 21)


class TestBBBConfig:
    def test_defaults_match_table3(self):
        cfg = BBBConfig()
        assert cfg.entries == 32
        assert cfg.drain_threshold == 0.75
        assert cfg.threshold_entries == 24
        assert cfg.memory_side
        assert cfg.drain_policy is DrainPolicy.FCFS_THRESHOLD


class TestSystemConfig:
    def test_table3_defaults(self):
        cfg = TABLE_III_CONFIG
        assert cfg.num_cores == 8
        assert cfg.clock_ghz == 2.0
        assert cfg.l1d.size_bytes == 128 << 10
        assert cfg.l1d.hit_latency == 2
        assert cfg.llc.size_bytes == 1 << 20
        assert cfg.llc.hit_latency == 11
        assert cfg.mem.nvmm_read_cycles == 300   # 150 ns @ 2 GHz
        assert cfg.mem.dram_read_cycles == 110   # 55 ns
        assert cfg.bbb.entries == 32

    def test_block_size_consistency_enforced(self):
        with pytest.raises(ValueError):
            SystemConfig(
                l1d=CacheConfig(1024, 2, 64),
                llc=CacheConfig(4096, 4, 128),
            )

    def test_with_bbb_override(self):
        cfg = SystemConfig().with_bbb(entries=128)
        assert cfg.bbb.entries == 128
        assert cfg.bbb.drain_threshold == 0.75  # untouched
        assert SystemConfig().bbb.entries == 32  # original unaffected

    def test_scaled_for_testing_shrinks(self):
        cfg = SystemConfig().scaled_for_testing()
        assert cfg.l1d.size_bytes < (128 << 10)
        assert cfg.mem.persistent_bytes < (4 << 30)
        assert cfg.num_cores == 8  # untouched

    def test_needs_at_least_one_core(self):
        with pytest.raises(ValueError):
            SystemConfig(num_cores=0)

    def test_consistency_default_is_tso(self):
        assert SystemConfig().consistency is ConsistencyModel.TSO
