"""Unit tests for trace records (repro.sim.trace)."""

import pytest

from repro.sim.trace import OpKind, ProgramTrace, ThreadTrace, TraceOp


class TestTraceOpBuilders:
    def test_load(self):
        op = TraceOp.load(0x100, size=4)
        assert op.kind is OpKind.LOAD and op.addr == 0x100 and op.size == 4

    def test_store(self):
        op = TraceOp.store(0x100, 42, tag="x")
        assert op.kind is OpKind.STORE and op.value == 42 and op.tag == "x"

    def test_flush_fence_compute_epoch(self):
        assert TraceOp.flush(0x40).kind is OpKind.FLUSH
        assert TraceOp.fence().kind is OpKind.FENCE
        assert TraceOp.compute(7).cycles == 7
        assert TraceOp.epoch().kind is OpKind.EPOCH

    def test_ops_are_immutable(self):
        op = TraceOp.load(0x100)
        with pytest.raises(Exception):
            op.addr = 0x200


class TestThreadTrace:
    def test_append_and_len(self):
        t = ThreadTrace()
        t.append(TraceOp.load(0))
        t.extend([TraceOp.store(8, 1), TraceOp.fence()])
        assert len(t) == 3

    def test_indexing_and_iteration(self):
        ops = [TraceOp.load(0), TraceOp.store(8, 1)]
        t = ThreadTrace(ops)
        assert t[1].kind is OpKind.STORE
        assert [o.kind for o in t] == [OpKind.LOAD, OpKind.STORE]

    def test_stores_filter(self):
        t = ThreadTrace([TraceOp.load(0), TraceOp.store(8, 1), TraceOp.store(16, 2)])
        assert [s.value for s in t.stores()] == [1, 2]

    def test_count(self):
        t = ThreadTrace([TraceOp.fence(), TraceOp.fence(), TraceOp.load(0)])
        assert t.count(OpKind.FENCE) == 2

    def test_count_cache_tracks_append_and_extend(self):
        t = ThreadTrace([TraceOp.load(0)])
        assert t.count(OpKind.LOAD) == 1  # materialises the cache
        t.append(TraceOp.load(8))
        t.extend([TraceOp.store(16, 1), TraceOp.load(24)])
        assert t.count(OpKind.LOAD) == 3
        assert t.count(OpKind.STORE) == 1

    def test_count_cache_invalidation_after_direct_mutation(self):
        t = ThreadTrace([TraceOp.load(0), TraceOp.store(8, 1)])
        assert t.count(OpKind.STORE) == 1
        t.ops.append(TraceOp.store(16, 2))  # bypasses the bookkeeping
        t.invalidate_counts()
        assert t.count(OpKind.STORE) == 2


class TestProgramTrace:
    def test_requires_threads(self):
        with pytest.raises(ValueError):
            ProgramTrace([])

    def test_totals(self):
        p = ProgramTrace(
            [
                ThreadTrace([TraceOp.store(0, 1), TraceOp.load(0)]),
                ThreadTrace([TraceOp.store(8, 2)]),
            ]
        )
        assert p.num_threads == 2
        assert p.total_ops() == 3
        assert p.total_stores() == 2

    def test_persistent_store_fraction(self):
        p = ProgramTrace(
            [ThreadTrace([TraceOp.store(0x10, 1), TraceOp.store(0x1000, 2)])]
        )
        assert p.persistent_store_fraction(lambda a: a >= 0x1000) == 0.5

    def test_fraction_of_storeless_trace_is_zero(self):
        p = ProgramTrace([ThreadTrace([TraceOp.load(0)])])
        assert p.persistent_store_fraction(lambda a: True) == 0.0

    def test_single_helper(self):
        p = ProgramTrace.single([TraceOp.load(0)])
        assert p.num_threads == 1


class TestWithEpochs:
    def test_inserts_epoch_every_n_stores(self):
        from repro.sim.trace import with_epochs

        ops = [TraceOp.store(i * 8, i) for i in range(6)]
        trace = with_epochs(ProgramTrace.single(ops), every_n_stores=2)
        kinds = [op.kind for op in trace.threads[0]]
        assert kinds.count(OpKind.EPOCH) == 3
        assert kinds[2] is OpKind.EPOCH  # after the second store

    def test_non_store_ops_do_not_count(self):
        from repro.sim.trace import with_epochs

        ops = [TraceOp.load(0), TraceOp.store(8, 1), TraceOp.compute(5),
               TraceOp.store(16, 2)]
        trace = with_epochs(ProgramTrace.single(ops), every_n_stores=2)
        assert trace.threads[0].count(OpKind.EPOCH) == 1

    def test_original_trace_unchanged(self):
        from repro.sim.trace import with_epochs

        original = ProgramTrace.single([TraceOp.store(0, 1)])
        with_epochs(original, 1)
        assert original.threads[0].count(OpKind.EPOCH) == 0

    def test_invalid_epoch_length(self):
        import pytest

        from repro.sim.trace import with_epochs

        with pytest.raises(ValueError):
            with_epochs(ProgramTrace.single([TraceOp.store(0, 1)]), 0)

    def test_bep_runs_an_annotated_workload(self):
        """End to end: a Table IV workload annotated for BEP."""
        from repro.sim.config import SystemConfig
        from repro.api import build_system
        from repro.sim.trace import with_epochs
        from repro.workloads.base import WorkloadSpec, registry

        cfg = SystemConfig(num_cores=2).scaled_for_testing()
        workload = registry(cfg.mem, WorkloadSpec(threads=2, ops=15))["hashmap"]
        trace = with_epochs(workload.build(), every_n_stores=8)
        result = build_system("bep", config=cfg).run(trace, finalize=False)
        assert result.stats.epoch_barriers > 0
