"""Unit tests for statistics (repro.sim.stats)."""

from repro.sim.stats import CoreStats, SimStats


class TestCoreStats:
    def test_hit_rate(self):
        cs = CoreStats(l1_hits=3, l1_misses=1)
        assert cs.l1_hit_rate == 0.75

    def test_hit_rate_no_accesses(self):
        assert CoreStats().l1_hit_rate == 0.0


class TestSimStats:
    def test_per_core_list_created(self):
        stats = SimStats(num_cores=4)
        assert len(stats.core) == 4

    def test_execution_cycles_is_max(self):
        stats = SimStats(num_cores=2)
        stats.core[0].cycles = 100
        stats.core[1].cycles = 250
        assert stats.execution_cycles == 250

    def test_totals_aggregate_cores(self):
        stats = SimStats(num_cores=2)
        stats.core[0].stores = 3
        stats.core[0].persisting_stores = 1
        stats.core[1].stores = 5
        stats.core[1].persisting_stores = 2
        assert stats.total_stores == 8
        assert stats.total_persisting_stores == 3
        assert stats.persist_store_fraction == 3 / 8

    def test_fraction_with_no_stores(self):
        assert SimStats(num_cores=1).persist_store_fraction == 0.0

    def test_bbpb_stall_total(self):
        stats = SimStats(num_cores=2)
        stats.core[0].stall_cycles_bbpb_full = 10
        stats.core[1].stall_cycles_bbpb_full = 5
        assert stats.total_bbpb_stalls == 15

    def test_summary_contains_headline_metrics(self):
        stats = SimStats(num_cores=1)
        summary = stats.summary()
        for key in ("execution_cycles", "nvmm_writes", "bbpb_rejections",
                    "bbpb_drains", "p_store_fraction"):
            assert key in summary

    def test_str_renders(self):
        assert "SimStats" in str(SimStats(num_cores=1))


class TestSerialisation:
    def test_to_dict_structure(self):
        stats = SimStats(num_cores=2)
        stats.core[0].stores = 3
        d = stats.to_dict()
        assert d["summary"]["stores"] == 3
        assert len(d["cores"]) == 2
        assert {"persist_latency", "llc", "cores"} <= set(d)

    def test_to_json_roundtrips(self):
        import json

        stats = SimStats(num_cores=1)
        stats.record_persist_latency(10)
        stats.record_persist_latency(30)
        d = json.loads(stats.to_json())
        assert d["persist_latency"] == {"count": 2, "avg": 20.0, "max": 30}

    def test_persist_latency_accumulation(self):
        stats = SimStats(num_cores=1)
        assert stats.persist_latency_avg == 0.0
        stats.record_persist_latency(5)
        stats.record_persist_latency(-3)  # clamped to 0
        assert stats.persist_latency_count == 2
        assert stats.persist_latency_avg == 2.5
        assert stats.persist_latency_max == 5
