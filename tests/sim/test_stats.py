"""Unit tests for statistics (repro.sim.stats)."""

import pytest

from repro.sim.stats import (
    CORE_FIELDS,
    SCALAR_FIELDS,
    STATS_SCHEMA,
    CoreStats,
    SimStats,
)


class TestCoreStats:
    def test_hit_rate(self):
        cs = CoreStats(l1_hits=3, l1_misses=1)
        assert cs.l1_hit_rate == 0.75

    def test_hit_rate_no_accesses(self):
        assert CoreStats().l1_hit_rate == 0.0


class TestSimStats:
    def test_per_core_list_created(self):
        stats = SimStats(num_cores=4)
        assert len(stats.core) == 4

    def test_execution_cycles_is_max(self):
        stats = SimStats(num_cores=2)
        stats.core[0].cycles = 100
        stats.core[1].cycles = 250
        assert stats.execution_cycles == 250

    def test_totals_aggregate_cores(self):
        stats = SimStats(num_cores=2)
        stats.core[0].stores = 3
        stats.core[0].persisting_stores = 1
        stats.core[1].stores = 5
        stats.core[1].persisting_stores = 2
        assert stats.total_stores == 8
        assert stats.total_persisting_stores == 3
        assert stats.persist_store_fraction == 3 / 8

    def test_fraction_with_no_stores(self):
        assert SimStats(num_cores=1).persist_store_fraction == 0.0

    def test_bbpb_stall_total(self):
        stats = SimStats(num_cores=2)
        stats.core[0].stall_cycles_bbpb_full = 10
        stats.core[1].stall_cycles_bbpb_full = 5
        assert stats.total_bbpb_stalls == 15

    def test_summary_contains_headline_metrics(self):
        stats = SimStats(num_cores=1)
        summary = stats.summary()
        for key in ("execution_cycles", "nvmm_writes", "bbpb_rejections",
                    "bbpb_drains", "p_store_fraction"):
            assert key in summary

    def test_str_renders(self):
        assert "SimStats" in str(SimStats(num_cores=1))


def _populated_stats() -> SimStats:
    stats = SimStats(num_cores=2)
    stats.core[0].stores = 3
    stats.core[0].cycles = 120
    stats.core[1].loads = 7
    stats.core[1].cycles = 90
    stats.nvmm_writes = 11
    stats.bbpb_drains = 4
    stats.bbpb_per_core[0] = 3
    stats.bbpb_per_core[1] = 1
    stats.record_persist_latency(10)
    stats.record_persist_latency(30)
    return stats


class TestSerialisation:
    def test_to_dict_structure(self):
        d = _populated_stats().to_dict()
        assert d["schema"] == STATS_SCHEMA == "repro.simstats/v1"
        assert d["num_cores"] == 2
        assert set(d["totals"]) == set(SCALAR_FIELDS)
        assert len(d["cores"]) == 2
        assert set(d["cores"][0]) == set(CORE_FIELDS)
        assert d["totals"]["nvmm_writes"] == 11
        assert d["cores"][0]["stores"] == 3
        assert d["bbpb_per_core"] == {"0": 3, "1": 1}
        assert d["derived"]["execution_cycles"] == 120

    def test_from_dict_roundtrips_losslessly(self):
        stats = _populated_stats()
        restored = SimStats.from_dict(stats.to_dict())
        assert restored.to_dict() == stats.to_dict()
        assert restored.nvmm_writes == 11
        assert restored.bbpb_per_core == stats.bbpb_per_core
        assert restored.persist_latency_avg == 20.0

    def test_to_json_is_the_same_schema(self):
        import json

        d = json.loads(_populated_stats().to_json())
        assert d["schema"] == STATS_SCHEMA
        assert SimStats.from_dict(d).execution_cycles == 120

    def test_from_dict_rejects_wrong_schema(self):
        payload = _populated_stats().to_dict()
        payload["schema"] = "repro.simstats/v0"
        with pytest.raises(ValueError, match="unsupported stats schema"):
            SimStats.from_dict(payload)

    def test_to_registry_projects_counters(self):
        reg = _populated_stats().to_registry()
        assert reg.counter("nvmm_writes").value == 11
        assert reg.counter("bbpb_drains").value == 4
        assert reg.get("core_stores").labels(0).value == 3
        assert reg.get("bbpb_drains_per_core").labels(1).value == 1

    def test_persist_latency_accumulation(self):
        stats = SimStats(num_cores=1)
        assert stats.persist_latency_avg == 0.0
        stats.record_persist_latency(5)
        stats.record_persist_latency(-3)  # clamped to 0
        assert stats.persist_latency_count == 2
        assert stats.persist_latency_avg == 2.5
        assert stats.persist_latency_max == 5
