"""Unit tests for the crash injector (repro.sim.crash)."""

import pytest

from repro.core.recovery import check_exact_durability
from repro.sim.crash import CrashInjector, CrashOutcome, CrashSweepReport
from repro.api import build_system
from repro.sim.trace import TraceOp
from tests.conftest import conflict_addresses, paddr, single_thread_trace


def strict_checker(system, result):
    check = check_exact_durability(system.nvmm_media, result.committed_persists)
    return check.consistent, check.violations


@pytest.fixture
def trace(small_config):
    ops = [TraceOp.store(paddr(small_config, i), i + 1) for i in range(6)]
    return single_thread_trace(*ops)


class TestCrashPoints:
    def test_all_points_by_default(self, small_config, trace):
        inj = CrashInjector(lambda: build_system("bbb", config=small_config), trace, strict_checker)
        assert inj.crash_points() == list(range(1, 7))

    def test_sampling_is_deterministic(self, small_config, trace):
        inj = CrashInjector(lambda: build_system("bbb", config=small_config), trace, strict_checker)
        a = inj.crash_points(sample=3, seed=7)
        b = inj.crash_points(sample=3, seed=7)
        assert a == b and len(a) == 3

    def test_sample_larger_than_space_returns_all(self, small_config, trace):
        inj = CrashInjector(lambda: build_system("bbb", config=small_config), trace, strict_checker)
        assert len(inj.crash_points(sample=100)) == 6

    def test_explicit_rng_matches_equally_seeded_generator(
        self, small_config, trace
    ):
        import random

        inj = CrashInjector(lambda: build_system("bbb", config=small_config), trace, strict_checker)
        via_seed = inj.crash_points(sample=3, seed=7)
        via_rng = inj.crash_points(sample=3, rng=random.Random(7))
        assert via_seed == via_rng

    def test_module_global_random_state_is_untouched(self, small_config, trace):
        import random

        inj = CrashInjector(lambda: build_system("bbb", config=small_config), trace, strict_checker)
        state = random.getstate()
        inj.crash_points(sample=3, seed=7)
        assert random.getstate() == state


class TestSweep:
    def test_bbb_sweep_is_fully_consistent(self, small_config, trace):
        inj = CrashInjector(lambda: build_system("bbb", config=small_config), trace, strict_checker)
        report = inj.sweep()
        assert report.total == 6
        assert report.all_consistent
        assert "6 consistent" in report.summary()

    def test_outcomes_carry_crash_op(self, small_config, trace):
        inj = CrashInjector(lambda: build_system("bbb", config=small_config), trace, strict_checker)
        report = inj.sweep(sample=2, seed=0)
        assert all(isinstance(o, CrashOutcome) for o in report.outcomes)
        assert all(1 <= o.crash_op <= 6 for o in report.outcomes)

    def test_sampled_sweep_is_subset_of_exhaustive(self, small_config, trace):
        """Exhaustive vs sampled equivalence: every sampled outcome must
        match the exhaustive sweep's outcome at the same crash op."""
        inj = CrashInjector(lambda: build_system("bbb", config=small_config), trace, strict_checker)
        full = {o.crash_op: o.consistent for o in inj.sweep().outcomes}
        sampled = inj.sweep(sample=3, seed=5)
        assert sampled.total == 3
        for o in sampled.outcomes:
            assert full[o.crash_op] == o.consistent

    def test_report_records_seed_and_sample(self, small_config, trace):
        inj = CrashInjector(lambda: build_system("bbb", config=small_config), trace, strict_checker)
        sampled = inj.sweep(sample=2, seed=9)
        assert sampled.seed == 9 and sampled.sample == 2
        exhaustive = inj.sweep()
        assert exhaustive.seed is None and exhaustive.sample is None

    def test_summary_counts(self, small_config, trace):
        inj = CrashInjector(lambda: build_system("bbb", config=small_config), trace, strict_checker)
        report = inj.sweep()
        assert report.summary() == "6 crash points, 6 consistent, 0 inconsistent"

    def test_no_persistency_sweep_detects_violations(self, small_config):
        """Directed set-conflict scenario: a 'head' block is evicted (and
        thus persisted in replacement order) while the older 'node' store
        is still cached — the per-core prefix check must fail for some
        crash point (Section II-A's corruption)."""
        from repro.core.recovery import check_prefix_consistency

        def prefix_checker(system, result):
            check = check_prefix_consistency(
                system.nvmm_media, result.committed_persists
            )
            return check.consistent, check.violations

        node = paddr(small_config, 1)
        head = paddr(small_config, 0)
        ops = [TraceOp.store(node, 0x1111), TraceOp.store(head, 0x2222)]
        # Loads that evict the head block from the LLC (writeback persists
        # head) while node stays cached.
        for addr in conflict_addresses(small_config, head, small_config.llc.assoc):
            ops.append(TraceOp.load(addr))
        trace = single_thread_trace(*ops)
        inj = CrashInjector(
            lambda: build_system("none", config=small_config), trace, prefix_checker
        )
        report = inj.sweep()
        assert not report.all_consistent
        assert any(
            "persist order violated" in v
            for o in report.inconsistent
            for v in o.violations
        )
