"""Golden-fingerprint equivalence: the batched columnar interpreter must
produce bit-identical ``SimStats`` (and persist records) to the object-mode
engine for every registered scheme x benchmark workload, and the
analytical mode must stay inside its declared tolerance band."""

import pytest

from repro.analysis.bench import fingerprint_run
from repro.analysis.experiments import default_sim_config
from repro.api import RunOptions, build_system
from repro.core.registry import CONTRACT_EPOCH, iter_schemes
from repro.sim.trace import with_epochs
from repro.workloads.base import (WORKLOAD_NAMES, WorkloadSpec, build_cached,
                                  seed_media_words)

SPEC = WorkloadSpec(threads=2, ops=25, elements=512, seed=13)
SCHEMES = [info for info in iter_schemes() if info.builtin]


def _run(info, trace, initial_words, mode):
    kwargs = {"entries": 8} if info.has_persist_buffer else {}
    system = build_system(info.name, config=default_sim_config(),
                          options=RunOptions(mode=mode), **kwargs)
    seed_media_words(system.nvmm_media, initial_words)
    result = system.run(trace, finalize=False)
    return system, result


@pytest.mark.parametrize("info", SCHEMES, ids=lambda i: i.name)
@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_columnar_matches_object_mode(info, workload):
    cfg = default_sim_config()
    trace, initial_words = build_cached(workload, cfg.mem, SPEC)
    if info.contract == CONTRACT_EPOCH:
        trace = with_epochs(trace, every_n_stores=8)
    _, obj = _run(info, trace, initial_words, "object")
    _, col = _run(info, trace, initial_words, "columnar")
    assert fingerprint_run(obj) == fingerprint_run(col)


def test_batched_path_actually_engages():
    """At least one TSO run must take the batched fast path — otherwise the
    equivalence above is vacuously comparing object mode with itself."""
    cfg = default_sim_config()
    trace, initial_words = build_cached("hashmap", cfg.mem, SPEC)
    engaged = []
    for info in SCHEMES:
        t = (with_epochs(trace, every_n_stores=8)
             if info.contract == CONTRACT_EPOCH else trace)
        system, _ = _run(info, t, initial_words, "columnar")
        engaged.append(system.engine.batch_counters["phases"] > 0)
    assert any(engaged)


@pytest.mark.parametrize(
    "info",
    [i for i in SCHEMES if i.contract != CONTRACT_EPOCH],
    ids=lambda i: i.name,
)
def test_analytical_exact_counts(info):
    """Analytical mode reproduces the op counts exactly for every
    non-epoch scheme (cycle/write errors are gated by the tolerance test
    in tests/test_analytical.py)."""
    cfg = default_sim_config()
    trace, initial_words = build_cached("hashmap", cfg.mem, SPEC)
    _, sim = _run(info, trace, initial_words, "object")
    _, est = _run(info, trace, initial_words, "analytical")
    assert est.stats.total_loads == sim.stats.total_loads
    assert est.stats.total_stores == sim.stats.total_stores
    assert (est.stats.total_persisting_stores
            == sim.stats.total_persisting_stores)
