"""Tests for trace file I/O (repro.sim.tracefile)."""

import json

import pytest

from repro.sim.config import SystemConfig
from repro.sim.trace import OpKind, ProgramTrace, ThreadTrace, TraceOp
from repro.sim.tracefile import TraceFormatError, load_trace, save_trace
from repro.workloads.base import WorkloadSpec, registry


def sample_trace():
    return ProgramTrace(
        [
            ThreadTrace(
                [
                    TraceOp.load(0x1000, size=4),
                    TraceOp.store(0x1008, 0xDEADBEEF, tag="x"),
                    TraceOp.flush(0x1000),
                    TraceOp.fence(),
                    TraceOp.compute(17),
                    TraceOp.epoch(),
                ]
            ),
            ThreadTrace([TraceOp.store(0x2000, 7)]),
        ]
    )


def ops_tuple(trace):
    return [
        (tid, op.kind, op.addr, op.size, op.value, op.cycles, op.tag)
        for tid, thread in enumerate(trace.threads)
        for op in thread
    ]


class TestRoundTrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "t.trace"
        count = save_trace(trace, path)
        assert count == trace.total_ops()
        loaded = load_trace(path)
        assert ops_tuple(loaded) == ops_tuple(trace)

    def test_roundtrip_workload_trace(self, tmp_path):
        cfg = SystemConfig(num_cores=2).scaled_for_testing()
        workload = registry(cfg.mem, WorkloadSpec(threads=2, ops=10))["hashmap"]
        trace = workload.build()
        path = tmp_path / "w.trace"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.total_ops() == trace.total_ops()
        assert loaded.total_stores() == trace.total_stores()

    def test_loaded_trace_runs_identically(self, tmp_path):
        from repro.api import build_system

        cfg = SystemConfig(num_cores=2).scaled_for_testing()
        workload = registry(cfg.mem, WorkloadSpec(threads=2, ops=10))["ctree"]
        trace = workload.build()
        path = tmp_path / "c.trace"
        save_trace(trace, path)
        loaded = load_trace(path)
        r1 = build_system("bbb", config=cfg).run(trace)
        r2 = build_system("bbb", config=cfg).run(loaded)
        assert r1.execution_cycles == r2.execution_cycles
        assert r1.stats.nvmm_writes == r2.stats.nvmm_writes


class TestFormat:
    def test_header_line(self, tmp_path):
        path = tmp_path / "t.trace"
        save_trace(sample_trace(), path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {"repro-trace": 1, "threads": 2}

    def test_zero_fields_omitted(self, tmp_path):
        path = tmp_path / "t.trace"
        save_trace(ProgramTrace.single([TraceOp.fence()]), path)
        record = json.loads(path.read_text().splitlines()[1])
        assert set(record) == {"t", "k"}


class TestErrors:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not json\n")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text('{"repro-trace": 99, "threads": 1}\n')
        with pytest.raises(TraceFormatError, match="version"):
            load_trace(path)

    def test_bad_thread_count(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text('{"repro-trace": 1, "threads": 0}\n')
        with pytest.raises(TraceFormatError, match="thread count"):
            load_trace(path)

    def test_thread_out_of_range(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(
            '{"repro-trace": 1, "threads": 1}\n{"t": 5, "k": "L"}\n'
        )
        with pytest.raises(TraceFormatError, match="out of range"):
            load_trace(path)

    def test_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(
            '{"repro-trace": 1, "threads": 1}\n{"t": 0, "k": "Z"}\n'
        )
        with pytest.raises(TraceFormatError, match="unknown op kind"):
            load_trace(path)

    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text('{"repro-trace": 1, "threads": 1}\n{{{\n')
        with pytest.raises(TraceFormatError, match="invalid JSON"):
            load_trace(path)

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "ok.trace"
        path.write_text(
            '{"repro-trace": 1, "threads": 1}\n\n{"t": 0, "k": "B"}\n\n'
        )
        trace = load_trace(path)
        assert trace.total_ops() == 1


class TestColumnarIO:
    def test_columnar_save_is_byte_identical(self, tmp_path):
        from repro.sim.coltrace import columnar_of

        trace = sample_trace()
        obj_path = tmp_path / "obj.trace"
        col_path = tmp_path / "col.trace"
        n_obj = save_trace(trace, obj_path)
        n_col = save_trace(columnar_of(trace), col_path)
        assert n_obj == n_col == trace.total_ops()
        assert obj_path.read_bytes() == col_path.read_bytes()

    def test_load_trace_columnar_roundtrip(self, tmp_path):
        from repro.sim.coltrace import columnar_of
        from repro.sim.tracefile import load_trace_columnar

        trace = sample_trace()
        path = tmp_path / "t.trace"
        save_trace(trace, path)
        cols = load_trace_columnar(path)
        want = columnar_of(trace)
        assert [t.column_lists() for t in cols.threads] == \
            [t.column_lists() for t in want.threads]
        assert [t.tags for t in cols.threads] == \
            [t.tags for t in want.threads]
        back = cols.to_program()
        assert [list(t) for t in back.threads] == \
            [list(t) for t in trace.threads]

    def test_wide_op_survives_columnar_io(self, tmp_path):
        from repro.sim.coltrace import columnar_of
        from repro.sim.tracefile import load_trace_columnar

        wide = ProgramTrace.single(
            [TraceOp.store(0, 1 << 70, tag="w"), TraceOp.load(64)]
        )
        path = tmp_path / "wide.trace"
        save_trace(columnar_of(wide), path)
        cols = load_trace_columnar(path)
        assert not cols.fast_path_ok
        assert cols.threads[0].op_at(0) == wide.threads[0][0]


class TestProgramIO:
    def sample_program(self):
        from repro.opt import Op, Program

        return Program(
            threads=(
                (
                    Op(OpKind.STORE, addr=0x10000, value=3,
                       origin="wl/0", durable=True),
                    Op(OpKind.FLUSH, addr=0x10000,
                       origin="naive-instrument/clwb", durable=True),
                    Op(OpKind.FENCE, origin="naive-instrument/sfence"),
                    Op(OpKind.LOAD, addr=0x40, size=4, origin="wl/1"),
                ),
                (Op(OpKind.EPOCH, origin="wl/2"),),
            ),
            name="sample",
        )

    def test_program_roundtrip_preserves_provenance(self, tmp_path):
        from repro.sim.tracefile import load_program, save_program

        program = self.sample_program()
        path = tmp_path / "p.trace"
        count = save_program(program, path)
        assert count == program.total_ops
        assert load_program(path) == program

    def test_program_resave_is_byte_identical(self, tmp_path):
        from repro.sim.tracefile import load_program, save_program

        program = self.sample_program()
        first = tmp_path / "a.trace"
        second = tmp_path / "b.trace"
        save_program(program, first)
        save_program(load_program(first), second)
        assert first.read_bytes() == second.read_bytes()

    def test_program_file_loads_as_plain_trace(self, tmp_path):
        from repro.sim.tracefile import load_trace_columnar, save_program

        program = self.sample_program()
        path = tmp_path / "p.trace"
        save_program(program, path)
        trace = load_trace(path)
        assert [list(t) for t in trace.threads] == \
            [list(t) for t in program.to_trace().threads]
        cols = load_trace_columnar(path)
        assert cols.to_program().total_ops() == program.total_ops

    def test_plain_trace_loads_as_metadata_free_program(self, tmp_path):
        from repro.sim.tracefile import load_program

        path = tmp_path / "t.trace"
        save_trace(sample_trace(), path)
        program = load_program(path)
        assert program.name == ""
        assert all(op.origin == "" and not op.durable
                   for _, _, op in program.iter_ops())
        assert [list(t.ops) for t in program.to_trace().threads] == \
            [list(t) for t in sample_trace().threads]

    def test_header_carries_the_program_name(self, tmp_path):
        from repro.sim.tracefile import save_program

        path = tmp_path / "p.trace"
        save_program(self.sample_program(), path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["program"] == "sample"

    def test_optimized_program_saves_and_reloads(self, tmp_path):
        from repro.opt import instrument_naive, run_pipeline
        from repro.opt.ir import Program
        from repro.sim.tracefile import load_program, save_program

        cfg = SystemConfig(num_cores=2).scaled_for_testing()
        workload = registry(
            cfg.mem, WorkloadSpec(threads=2, ops=4, elements=64)
        )["hashmap"]
        naive = instrument_naive(Program.from_trace(
            workload.build(), name="hashmap", origin="hashmap",
            is_persistent=cfg.mem.is_persistent,
        ))
        result = run_pipeline(naive, "bbb", block_size=cfg.block_size)
        path = tmp_path / "opt.trace"
        save_program(result.optimized, path)
        assert load_program(path) == result.optimized
