"""Tests for trace file I/O (repro.sim.tracefile)."""

import json

import pytest

from repro.sim.config import SystemConfig
from repro.sim.trace import OpKind, ProgramTrace, ThreadTrace, TraceOp
from repro.sim.tracefile import TraceFormatError, load_trace, save_trace
from repro.workloads.base import WorkloadSpec, registry


def sample_trace():
    return ProgramTrace(
        [
            ThreadTrace(
                [
                    TraceOp.load(0x1000, size=4),
                    TraceOp.store(0x1008, 0xDEADBEEF, tag="x"),
                    TraceOp.flush(0x1000),
                    TraceOp.fence(),
                    TraceOp.compute(17),
                    TraceOp.epoch(),
                ]
            ),
            ThreadTrace([TraceOp.store(0x2000, 7)]),
        ]
    )


def ops_tuple(trace):
    return [
        (tid, op.kind, op.addr, op.size, op.value, op.cycles, op.tag)
        for tid, thread in enumerate(trace.threads)
        for op in thread
    ]


class TestRoundTrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "t.trace"
        count = save_trace(trace, path)
        assert count == trace.total_ops()
        loaded = load_trace(path)
        assert ops_tuple(loaded) == ops_tuple(trace)

    def test_roundtrip_workload_trace(self, tmp_path):
        cfg = SystemConfig(num_cores=2).scaled_for_testing()
        workload = registry(cfg.mem, WorkloadSpec(threads=2, ops=10))["hashmap"]
        trace = workload.build()
        path = tmp_path / "w.trace"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.total_ops() == trace.total_ops()
        assert loaded.total_stores() == trace.total_stores()

    def test_loaded_trace_runs_identically(self, tmp_path):
        from repro.api import build_system

        cfg = SystemConfig(num_cores=2).scaled_for_testing()
        workload = registry(cfg.mem, WorkloadSpec(threads=2, ops=10))["ctree"]
        trace = workload.build()
        path = tmp_path / "c.trace"
        save_trace(trace, path)
        loaded = load_trace(path)
        r1 = build_system("bbb", config=cfg).run(trace)
        r2 = build_system("bbb", config=cfg).run(loaded)
        assert r1.execution_cycles == r2.execution_cycles
        assert r1.stats.nvmm_writes == r2.stats.nvmm_writes


class TestFormat:
    def test_header_line(self, tmp_path):
        path = tmp_path / "t.trace"
        save_trace(sample_trace(), path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {"repro-trace": 1, "threads": 2}

    def test_zero_fields_omitted(self, tmp_path):
        path = tmp_path / "t.trace"
        save_trace(ProgramTrace.single([TraceOp.fence()]), path)
        record = json.loads(path.read_text().splitlines()[1])
        assert set(record) == {"t", "k"}


class TestErrors:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not json\n")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text('{"repro-trace": 99, "threads": 1}\n')
        with pytest.raises(TraceFormatError, match="version"):
            load_trace(path)

    def test_bad_thread_count(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text('{"repro-trace": 1, "threads": 0}\n')
        with pytest.raises(TraceFormatError, match="thread count"):
            load_trace(path)

    def test_thread_out_of_range(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(
            '{"repro-trace": 1, "threads": 1}\n{"t": 5, "k": "L"}\n'
        )
        with pytest.raises(TraceFormatError, match="out of range"):
            load_trace(path)

    def test_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(
            '{"repro-trace": 1, "threads": 1}\n{"t": 0, "k": "Z"}\n'
        )
        with pytest.raises(TraceFormatError, match="unknown op kind"):
            load_trace(path)

    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text('{"repro-trace": 1, "threads": 1}\n{{{\n')
        with pytest.raises(TraceFormatError, match="invalid JSON"):
            load_trace(path)

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "ok.trace"
        path.write_text(
            '{"repro-trace": 1, "threads": 1}\n\n{"t": 0, "k": "B"}\n\n'
        )
        trace = load_trace(path)
        assert trace.total_ops() == 1


class TestColumnarIO:
    def test_columnar_save_is_byte_identical(self, tmp_path):
        from repro.sim.coltrace import columnar_of

        trace = sample_trace()
        obj_path = tmp_path / "obj.trace"
        col_path = tmp_path / "col.trace"
        n_obj = save_trace(trace, obj_path)
        n_col = save_trace(columnar_of(trace), col_path)
        assert n_obj == n_col == trace.total_ops()
        assert obj_path.read_bytes() == col_path.read_bytes()

    def test_load_trace_columnar_roundtrip(self, tmp_path):
        from repro.sim.coltrace import columnar_of
        from repro.sim.tracefile import load_trace_columnar

        trace = sample_trace()
        path = tmp_path / "t.trace"
        save_trace(trace, path)
        cols = load_trace_columnar(path)
        want = columnar_of(trace)
        assert [t.column_lists() for t in cols.threads] == \
            [t.column_lists() for t in want.threads]
        assert [t.tags for t in cols.threads] == \
            [t.tags for t in want.threads]
        back = cols.to_program()
        assert [list(t) for t in back.threads] == \
            [list(t) for t in trace.threads]

    def test_wide_op_survives_columnar_io(self, tmp_path):
        from repro.sim.coltrace import columnar_of
        from repro.sim.tracefile import load_trace_columnar

        wide = ProgramTrace.single(
            [TraceOp.store(0, 1 << 70, tag="w"), TraceOp.load(64)]
        )
        path = tmp_path / "wide.trace"
        save_trace(columnar_of(wide), path)
        cols = load_trace_columnar(path)
        assert not cols.fast_path_ok
        assert cols.threads[0].op_at(0) == wide.threads[0][0]
