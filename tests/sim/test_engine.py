"""Unit tests for the trace-interleaving engine (repro.sim.engine)."""

import pytest

from repro.api import build_system
from repro.sim.trace import ProgramTrace, ThreadTrace, TraceOp
from tests.conftest import daddr, paddr, single_thread_trace


class TestBasicExecution:
    def test_compute_advances_clock(self, small_config):
        system = build_system("eadr", config=small_config)
        result = system.run(single_thread_trace(TraceOp.compute(100)))
        assert result.execution_cycles == 100
        assert result.stats.core[0].compute_cycles == 100

    def test_store_costs_one_cycle(self, small_config):
        system = build_system("eadr", config=small_config)
        result = system.run(
            single_thread_trace(TraceOp.store(paddr(small_config, 0), 1)),
            finalize=False,
        )
        # commit (1) + release (1)
        assert result.execution_cycles == 2

    def test_load_pays_hierarchy_latency(self, small_config):
        system = build_system("eadr", config=small_config)
        result = system.run(
            single_thread_trace(TraceOp.load(paddr(small_config, 0))),
            finalize=False,
        )
        expected = (
            small_config.l1d.hit_latency
            + small_config.llc.hit_latency
            + small_config.mem.nvmm_read_cycles
        )
        assert result.execution_cycles == expected

    def test_too_many_threads_rejected(self, small_config):
        system = build_system("eadr", config=small_config)
        threads = [ThreadTrace([TraceOp.compute(1)]) for _ in range(
            small_config.num_cores + 1
        )]
        with pytest.raises(ValueError):
            system.run(ProgramTrace(threads))

    def test_per_core_clocks_independent(self, small_config):
        system = build_system("eadr", config=small_config)
        trace = ProgramTrace(
            [
                ThreadTrace([TraceOp.compute(1000)]),
                ThreadTrace([TraceOp.compute(10)]),
            ]
        )
        result = system.run(trace)
        assert result.stats.core[0].cycles == 1000
        assert result.stats.core[1].cycles == 10
        assert result.execution_cycles == 1000


class TestInterleaving:
    def test_lowest_clock_core_runs_first(self, small_config):
        """Core 1's cheap ops all execute before core 0's second op."""
        system = build_system("none", config=small_config)
        x = paddr(small_config, 0)
        trace = ProgramTrace(
            [
                ThreadTrace([TraceOp.compute(10_000), TraceOp.store(x, 0xAA)]),
                ThreadTrace([TraceOp.store(x, 0xBB)]),
            ]
        )
        system.run(trace, finalize=False)
        # Core 0's store lands last: its value must win.
        assert system.hierarchy.load(0, x, 8, 10**9)[0] == 0xAA


class TestStoreBufferForwarding:
    def test_load_forwards_from_sb_under_relaxed(self, small_config):
        import dataclasses

        from repro.core.persistency import BBBScheme
        from repro.sim.config import ConsistencyModel
        from repro.sim.system import System

        cfg = dataclasses.replace(small_config, consistency=ConsistencyModel.RELAXED)
        system = System(cfg, BBBScheme(), reorder_seed=1)
        x = paddr(cfg, 0)
        trace = single_thread_trace(
            TraceOp.store(x, 0x77),
            TraceOp.load(x),
        )
        result = system.run(trace)
        # Forward happened if the store was still buffered; either way the
        # loads counter reflects one load.
        assert result.stats.core[0].loads == 1


class TestFlushFence:
    def test_explicit_flush_fence_round_trip(self, small_config):
        system = build_system("none", config=small_config)
        x = paddr(small_config, 0)
        trace = single_thread_trace(
            TraceOp.store(x, 5),
            TraceOp.flush(x),
            TraceOp.fence(),
        )
        result = system.run(trace, finalize=False)
        assert system.nvmm_media.read_word(x, 8) == 5
        assert result.stats.flushes == 1
        assert result.stats.fences == 1
        assert result.stats.core[0].stall_cycles_flush_fence > 0

    def test_fence_without_flush_is_cheap(self, small_config):
        system = build_system("none", config=small_config)
        result = system.run(single_thread_trace(TraceOp.fence()), finalize=False)
        assert result.stats.core[0].stall_cycles_flush_fence == 0

    def test_outstanding_flushes_awaited_at_end(self, small_config):
        system = build_system("none", config=small_config)
        x = paddr(small_config, 0)
        trace = single_thread_trace(TraceOp.store(x, 5), TraceOp.flush(x))
        result = system.run(trace, finalize=False)
        # completion includes the flush round trip even without a fence
        assert result.execution_cycles >= small_config.mem.mc_transfer_cycles


class TestCrashInjection:
    def test_crash_stops_execution(self, small_config):
        system = build_system("bbb", config=small_config)
        ops = [TraceOp.store(paddr(small_config, i), i + 1) for i in range(10)]
        result = system.run(single_thread_trace(*ops), crash_at_op=4)
        assert result.crashed and result.crash_op == 4
        assert result.stats.core[0].stores == 4

    def test_crash_produces_drain_report(self, small_config):
        system = build_system("bbb", config=small_config)
        ops = [TraceOp.store(paddr(small_config, i), i + 1) for i in range(10)]
        result = system.run(single_thread_trace(*ops), crash_at_op=4)
        assert result.drain_report is not None
        assert result.drain_report.scheme == "bbb"

    def test_crash_counts_interleaved_ops_globally(self, small_config):
        system = build_system("bbb", config=small_config)
        trace = ProgramTrace(
            [
                ThreadTrace([TraceOp.compute(1)] * 5),
                ThreadTrace([TraceOp.compute(1)] * 5),
            ]
        )
        result = system.run(trace, crash_at_op=6)
        assert result.crash_op == 6


class TestPersistRecords:
    def test_committed_equals_performed_under_tso(self, small_config):
        system = build_system("bbb", config=small_config)
        ops = [TraceOp.store(paddr(small_config, i), i) for i in range(5)]
        result = system.run(single_thread_trace(*ops))
        assert [r.addr for r in result.committed_persists] == [
            r.addr for r in result.performed_persists
        ]

    def test_volatile_stores_not_recorded(self, small_config):
        system = build_system("bbb", config=small_config)
        trace = single_thread_trace(
            TraceOp.store(daddr(small_config, 0), 1),
            TraceOp.store(paddr(small_config, 0), 2),
        )
        result = system.run(trace)
        assert len(result.committed_persists) == 1
        assert result.committed_persists[0].value == 2


class TestDeterminism:
    def test_identical_runs_produce_identical_stats(self, small_config):
        """The simulator is fully deterministic: same trace, same config,
        same seed => byte-identical stats and media image."""
        from repro.workloads.base import WorkloadSpec, registry

        spec = WorkloadSpec(threads=4, ops=40, elements=1024, seed=9)

        def run_once():
            workload = registry(small_config.mem, spec)["ctree"]
            system = build_system("bbb", config=small_config)
            workload.seed_media(system.nvmm_media)
            result = system.run(workload.build(), finalize=False)
            return result.stats.to_dict(), sorted(
                (a, tuple(sorted(d.bytes.items())))
                for a, d in system.nvmm_media.image().items()
            )

        stats_a, image_a = run_once()
        stats_b, image_b = run_once()
        assert stats_a == stats_b
        assert image_a == image_b

    def test_relaxed_mode_deterministic_per_seed(self, small_config):
        import dataclasses

        from repro.core.persistency import BBBScheme
        from repro.sim.config import ConsistencyModel
        from repro.sim.system import System

        cfg = dataclasses.replace(small_config, consistency=ConsistencyModel.RELAXED)
        ops = [TraceOp.store(paddr(cfg, i), i + 1) for i in range(30)]

        def run(seed):
            system = System(cfg, BBBScheme(), reorder_seed=seed)
            result = system.run(single_thread_trace(*ops), finalize=False)
            return [(r.addr, r.value) for r in result.performed_persists]

        assert run(5) == run(5)
        assert run(5) != run(6) or len(run(5)) == 0
