"""Traffic frontend tests: run determinism, both reactor loops, scheme
discrimination, the versioned report schema, and the KV service's
routing/lowering invariants."""

import json

import pytest

from repro.core.registry import ADR, BBB, EADR, canonical_name
from repro.serve import (TRAFFIC_SCHEMA_VERSION, KVService, TenantSpec,
                         TrafficSpec, iter_requests, render_curve,
                         run_traffic, traffic_curve,
                         validate_traffic_report)
from repro.serve.frontend import default_traffic_config

SPEC = TrafficSpec(requests=40, seed=7)
TWO_TENANTS = TrafficSpec(
    requests=40, seed=7,
    tenants=(TenantSpec("alpha", keys=128), TenantSpec("beta", keys=128)),
)


# ----------------------------------------------------------------------
# run_traffic
# ----------------------------------------------------------------------

@pytest.mark.parametrize("arrival", ["open", "closed"])
def test_run_traffic_is_deterministic(arrival):
    import dataclasses
    spec = dataclasses.replace(SPEC, arrival=arrival)
    a = run_traffic(BBB, spec, entries=16)
    b = run_traffic(BBB, spec, entries=16)
    assert a.to_payload() == b.to_payload()
    assert a.completed == spec.requests
    assert a.latency["count"] == spec.requests
    assert a.latency["p50"] > 0
    assert a.latency["p50"] <= a.latency["p99"] <= a.latency["p999"]


def test_open_loop_latency_includes_queueing_delay():
    """Overload must show up in the tail: the same traffic at 50x the
    offered load completes sooner in wall-cycles but waits longer."""
    relaxed = run_traffic(BBB, SPEC.with_load(0.05), entries=16)
    slammed = run_traffic(BBB, SPEC.with_load(50.0), entries=16)
    assert slammed.execution_cycles < relaxed.execution_cycles
    assert slammed.latency["p99"] > relaxed.latency["p99"]


def test_schemes_discriminate_on_latency():
    """pmem (ADR) pays flush+fence on the critical path; bbb does not."""
    bbb = run_traffic(BBB, SPEC, entries=16)
    adr = run_traffic(ADR, SPEC, entries=16)
    assert adr.scheme == canonical_name(ADR)
    # The mean is exact (the histogram only approximates quantiles), so
    # it is the robust discriminator at small request counts.
    assert adr.latency["mean_cycles"] > bbb.latency["mean_cycles"]
    assert adr.latency["p99"] > bbb.latency["p99"]


def test_per_tenant_and_per_op_breakdowns():
    point = run_traffic(BBB, TWO_TENANTS, entries=16)
    assert set(point.tenants) <= {"alpha", "beta"}
    assert sum(b["count"] for b in point.tenants.values()) == point.completed
    assert sum(b["count"] for b in point.ops.values()) == point.completed


def test_closed_loop_completes_every_request():
    import dataclasses
    spec = dataclasses.replace(TWO_TENANTS, arrival="closed", clients=4,
                               think_cycles=200)
    point = run_traffic(EADR, spec, entries=16)
    assert point.completed == spec.requests
    assert not point.crashed


# ----------------------------------------------------------------------
# KVService
# ----------------------------------------------------------------------

def _service(spec):
    cfg = default_traffic_config()
    return KVService(cfg.mem, spec, cfg.num_cores)


def test_routing_is_stable_and_in_range():
    service = _service(TWO_TENANTS)
    for request in iter_requests(TWO_TENANTS):
        core = service.core_of(request)
        assert 0 <= core < service.num_cores
        assert service.core_of(request) == core


def test_lowering_counts_persisting_stores():
    service = _service(SPEC)
    for request in iter_requests(SPEC):
        ops = service.ops_for(request)
        assert ops, "every request lowers to at least the parse/head ops"
    assert service.requests_lowered == SPEC.requests
    # The default mix has updates and inserts: something must persist.
    assert service.persisting_stores > 0


def test_reads_never_persist():
    spec = TrafficSpec(requests=30, seed=3, tenants=(
        TenantSpec("t", read_fraction=1.0, update_fraction=0.0,
                   insert_fraction=0.0),
    ))
    service = _service(spec)
    for request in iter_requests(spec):
        service.ops_for(request)
    assert service.persisting_stores == 0


# ----------------------------------------------------------------------
# traffic_curve + report schema
# ----------------------------------------------------------------------

def _report():
    return traffic_curve((BBB, EADR), SPEC, (1.0, 4.0), entries=16)


def test_curve_report_is_valid_and_json_round_trips():
    report = _report()
    assert report["schema"] == TRAFFIC_SCHEMA_VERSION
    assert report["schemes"] == [canonical_name(BBB), canonical_name(EADR)]
    validate_traffic_report(json.loads(json.dumps(report)))
    for name in report["schemes"]:
        loads = [e["offered_load"] for e in report["curves"][name]]
        assert loads == [1.0, 4.0]


def test_curve_accepts_aliases():
    report = traffic_curve((ADR,), SPEC, (1.0,), entries=16)
    assert report["schemes"] == [canonical_name(ADR)]


@pytest.mark.parametrize("mutate, fragment", [
    (lambda r: r.update(schema="repro.traffic/v0"), "schema"),
    (lambda r: r.pop("curves"), "curves"),
    (lambda r: r.update(points=[]), "points"),
    (lambda r: r["points"][0].pop("latency"), "latency"),
    (lambda r: r["points"][0]["latency"].pop("p999"), "p999"),
    (lambda r: r["points"][0].update(completed=10 ** 9), "completed"),
    (lambda r: r["curves"][canonical_name(BBB)][0].update(
        offered_load=123.0), "matching point"),
    (lambda r: r["points"][0].update(shed=-1), "shed"),
    (lambda r: r["points"][0].update(shed_rate=2.0), "shed_rate"),
    (lambda r: r["points"][0].update(degraded="yes"), "degraded"),
    (lambda r: r["points"][0].pop("max_queue_depth"), "max_queue_depth"),
    (lambda r: r["points"][0].update(shed=10 ** 9),
     "requests"),
    (lambda r: r["curves"][canonical_name(BBB)][0].pop("shed_rate"),
     "shed_rate"),
])
def test_validation_names_the_broken_field(mutate, fragment):
    report = _report()
    mutate(report)
    with pytest.raises(ValueError, match=fragment):
        validate_traffic_report(report)


def test_render_curve_mentions_every_scheme():
    text = render_curve(_report())
    for name in (canonical_name(BBB), canonical_name(EADR)):
        assert f"{name}:" in text
    assert "p999" in text


def test_render_curve_annotates_the_saturation_knee():
    """Past saturation achieved load falls behind offered load; the
    render must mark the first such row per scheme."""
    report = traffic_curve((BBB,), SPEC, (0.05, 50.0), entries=16)
    text = render_curve(report)
    assert text.count("<- knee") == 1
    relaxed = traffic_curve((BBB,), SPEC, (0.05,), entries=16)
    assert "<- knee" not in render_curve(relaxed)


def test_curve_rejects_empty_inputs():
    with pytest.raises(ValueError):
        traffic_curve((), SPEC, (1.0,))
    with pytest.raises(ValueError):
        traffic_curve((BBB,), SPEC, ())
