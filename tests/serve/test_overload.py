"""Overload-protection tests: bounded admission queues, per-request
deadlines, closed-loop retries, and degraded-mode serving."""

import dataclasses

import pytest

from repro.api import RunOptions
from repro.core.registry import ADR, BBB, scheme_info
from repro.fault.injector import FaultInjector
from repro.fault.plan import SITE_BATTERY, FaultPlan, FaultSpec
from repro.serve import TrafficSpec, run_traffic
from repro.serve.frontend import OUTCOME_REJECTED, OUTCOME_TIMEOUT

BASE = TrafficSpec(requests=60, seed=7)


def test_default_spec_never_sheds_or_times_out():
    point = run_traffic(BBB, BASE, entries=16)
    assert point.completed == BASE.requests
    assert point.shed == 0
    assert point.timeouts == 0
    assert point.retries == 0
    assert point.shed_rate == 0.0
    assert point.degraded is False


def test_bounded_queues_shed_past_saturation():
    """At 50x the sustainable load a 3-deep admission queue must shed,
    and the observed depth must never exceed the bound."""
    spec = dataclasses.replace(BASE, offered_load=50.0, queue_limit=3)
    point = run_traffic(BBB, spec, entries=16)
    assert point.shed > 0
    assert point.max_queue_depth <= spec.queue_limit
    assert point.shed_rate == round(point.shed / spec.requests, 6)
    assert point.completed + point.shed + point.timeouts == spec.requests


def test_unbounded_queues_grow_past_the_limit():
    """The same overload without a limit queues deeper than the bounded
    run ever did — the depth metric measures something real."""
    bounded = run_traffic(
        BBB, dataclasses.replace(BASE, offered_load=50.0, queue_limit=3),
        entries=16)
    unbounded = run_traffic(
        BBB, dataclasses.replace(BASE, offered_load=50.0), entries=16)
    assert unbounded.shed == 0
    assert unbounded.max_queue_depth > bounded.max_queue_depth


def test_deadlines_drop_stale_requests_before_lowering():
    spec = dataclasses.replace(BASE, offered_load=50.0, deadline_cycles=300)
    point = run_traffic(BBB, spec, entries=16)
    assert point.timeouts > 0
    assert point.completed + point.timeouts == spec.requests
    # A timed-out request is never served: its latency never lands in
    # the histogram.
    assert point.latency["count"] == point.completed


def test_overload_outcomes_land_in_the_recorder():
    from repro.obs.latency import LatencyRecorder

    recorder = LatencyRecorder()
    recorder.count(OUTCOME_REJECTED)
    recorder.count(OUTCOME_TIMEOUT, 2)
    assert recorder.outcome(OUTCOME_REJECTED) == 1
    assert recorder.outcome(OUTCOME_TIMEOUT) == 2
    assert recorder.outcome("no-such") == 0
    assert recorder.outcomes == {OUTCOME_REJECTED: 1, OUTCOME_TIMEOUT: 2}


def test_closed_loop_terminates_under_pathological_overload():
    """Deadline + bounded retries guarantee every request's lifetime is
    bounded, so the reactor always terminates (the bug this PR fixes:
    closed-loop clients used to block forever behind a saturated core)."""
    spec = dataclasses.replace(
        BASE, arrival="closed", clients=12, think_cycles=0,
        queue_limit=1, deadline_cycles=100, max_retries=2,
    )
    point = run_traffic(BBB, spec, entries=16)
    assert point.completed + point.shed + point.timeouts \
        <= spec.requests + point.retries
    assert point.completed > 0


def test_closed_loop_retries_are_counted_and_bounded():
    spec = dataclasses.replace(
        BASE, arrival="closed", clients=12, think_cycles=0,
        queue_limit=1, max_retries=3,
    )
    point = run_traffic(BBB, spec, entries=16)
    if point.shed:
        assert point.retries > 0
    assert point.retries <= spec.max_retries * spec.requests


def test_closed_loop_without_retries_still_terminates():
    spec = dataclasses.replace(
        BASE, arrival="closed", clients=12, think_cycles=0, queue_limit=1,
    )
    point = run_traffic(BBB, spec, entries=16)
    assert point.completed + point.shed == spec.requests


# ----------------------------------------------------------------------
# Degraded-mode serving
# ----------------------------------------------------------------------

def _battery_suspect_options():
    plan = FaultPlan(faults=(
        FaultSpec(site=SITE_BATTERY, fault="exhaustion", nth=1, count=1,
                  params=(("blocks", 0),)),
    ), seed=1, label="failing-battery")
    return RunOptions(fault_injector=FaultInjector(plan))


def test_forced_degraded_mode_writes_through():
    normal = run_traffic(BBB, BASE, entries=16, degraded=False)
    degraded = run_traffic(BBB, BASE, entries=16, degraded=True)
    assert degraded.degraded is True
    assert degraded.completed == BASE.requests
    # Write-through drains every persisting store out of the battery
    # domain: strictly more NVMM traffic, never less.
    assert degraded.nvmm_writes > normal.nvmm_writes


def test_degraded_mode_refused_without_the_capability():
    assert not scheme_info(ADR).degraded_mode
    with pytest.raises(ValueError, match="no degraded mode"):
        run_traffic(ADR, BASE, entries=16, degraded=True)


def test_battery_health_auto_triggers_degraded_serving():
    point = run_traffic(BBB, BASE, entries=16,
                        options=_battery_suspect_options())
    assert point.degraded is True


def test_auto_degrade_skips_incapable_schemes():
    point = run_traffic(ADR, BASE, entries=16,
                        options=_battery_suspect_options())
    assert point.degraded is False
    assert point.completed == BASE.requests


def test_degraded_false_overrides_the_health_signal():
    point = run_traffic(BBB, BASE, entries=16, degraded=False,
                        options=_battery_suspect_options())
    assert point.degraded is False
