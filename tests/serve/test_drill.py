"""Crash-recovery drill tests: crash-point counting, per-request
durability accounting, the RPO gate on battery-domain schemes, mutant
detection, report schema validation, and determinism."""

import json

import pytest

from repro.core.recovery import (
    ACKED_DURABLE,
    ACKED_LOST,
    REQUEST_OUTCOMES,
    UNACKED_LOST,
)
from repro.core.registry import BBB, EADR, canonical_name
from repro.serve import (
    DRILL_SCHEMA,
    DrillUnit,
    TrafficSpec,
    count_crash_sites,
    execute_drill_unit,
    run_drills,
    validate_drill_report,
)

SPEC = TrafficSpec(requests=36, seed=7, offered_load=2.0)


# ----------------------------------------------------------------------
# Crash-point counting
# ----------------------------------------------------------------------

def test_count_crash_sites_is_positive_and_stable():
    a = count_crash_sites(BBB, SPEC, entries=8)
    b = count_crash_sites(BBB, SPEC, entries=8)
    assert a == b
    assert a > SPEC.requests, "every request lowers to several engine ops"


def test_crash_sites_are_scheme_independent():
    """Requests lower identically everywhere, so one count serves a
    whole scheme sweep (the shared-crash-point design assumption)."""
    assert count_crash_sites(BBB, SPEC, entries=8) == \
        count_crash_sites(EADR, SPEC, entries=8)


# ----------------------------------------------------------------------
# Single drill units
# ----------------------------------------------------------------------

def _unit(scheme=BBB, visit=None, mutant=""):
    if visit is None:
        visit = count_crash_sites(BBB, SPEC, entries=8) // 2
    name = canonical_name(scheme) if not mutant else scheme
    return execute_drill_unit(
        DrillUnit(scheme=name, spec=SPEC, crash_visit=visit, entries=8,
                  mutant=mutant)
    )


def test_bbb_unit_crashes_and_loses_nothing_acked():
    unit = _unit(BBB)
    assert unit["crashed"]
    assert unit["battery_domain"]
    assert unit["contract_consistent"]
    assert unit["outcomes"][ACKED_LOST] == 0
    assert unit["rpo"]["acked_lost_requests"] == 0
    assert unit["rpo"]["acked_lost_bytes"] == 0


def test_unit_accounts_for_every_request():
    unit = _unit(BBB)
    covered = sum(unit["outcomes"].values()) + unit["resolved_pre_crash"]
    assert covered == SPEC.requests
    assert set(unit["outcomes"]) == set(REQUEST_OUTCOMES)
    assert unit["outcomes"][ACKED_DURABLE] == \
        unit["acked"] - unit["outcomes"][ACKED_LOST]


def test_rto_legs_are_populated():
    unit = _unit(BBB)
    rto = unit["rto"]
    assert rto["repair_cycles"] > 0, "recovery always walks the chains"
    assert rto["restart_cycles"] > 0, "a mid-run crash leaves work"
    assert rto["total_cycles"] == (rto["drain_cycles"]
                                   + rto["repair_cycles"]
                                   + rto["restart_cycles"])


def test_restart_serves_every_unresolved_request():
    unit = _unit(EADR)
    rec = unit["recovery"]
    assert rec["restart_requests"] == unit["outcomes"][UNACKED_LOST] + \
        unit["outcomes"]["retried-duplicate"]
    assert rec["restart_completed"] == rec["restart_requests"]


def test_drill_unit_is_deterministic():
    assert _unit(BBB) == _unit(BBB)


def test_late_crash_leaves_less_unresolved_than_early():
    total = count_crash_sites(BBB, SPEC, entries=8)
    early = _unit(BBB, visit=total // 8)
    late = _unit(BBB, visit=total - 1)
    assert early["acked"] < late["acked"]
    assert early["recovery"]["restart_requests"] > \
        late["recovery"]["restart_requests"]


# ----------------------------------------------------------------------
# Mutant detection (the gate must have teeth)
# ----------------------------------------------------------------------

def test_delayed_alloc_mutant_is_caught_losing_acked_writes():
    total = count_crash_sites(BBB, SPEC, entries=8)
    hits = 0
    for visit in (total // 4, total // 2, 3 * total // 4):
        unit = _unit("bbb", visit=visit, mutant="bbb-delayed-alloc")
        assert unit["mutant"] == "bbb-delayed-alloc"
        if unit["rpo"]["acked_lost_requests"] > 0 \
                or not unit["contract_consistent"]:
            hits += 1
    assert hits > 0, "the sabotaged scheme must be caught at some point"


# ----------------------------------------------------------------------
# run_drills + report schema
# ----------------------------------------------------------------------

def _report():
    return run_drills([BBB, EADR], SPEC, (2.0,), crashes=2, seed=7,
                      entries=8, mutants=("bbb-delayed-alloc",))


def test_drill_report_is_valid_and_json_round_trips():
    report = _report()
    assert report["schema"] == DRILL_SCHEMA
    validate_drill_report(json.loads(json.dumps(report)))
    assert set(report["per_scheme"]) == {canonical_name(BBB),
                                         canonical_name(EADR)}
    assert set(report["per_mutant"]) == {"bbb-delayed-alloc"}
    # 2 schemes x 2 crashes + 1 mutant x 2 crashes.
    assert len(report["units"]) == 6


def test_battery_domain_gate_block():
    report = _report()
    domain = report["battery_domain"]
    assert domain["acked_lost"] == 0
    assert domain["mutants_caught"]["bbb-delayed-alloc"] is True


def test_crash_points_are_shared_across_schemes():
    report = _report()
    by_name = {}
    for unit in report["units"]:
        key = unit["mutant"] or unit["scheme"]
        by_name.setdefault(key, []).append(unit["crash_visit"])
    visits = set(tuple(sorted(v)) for v in by_name.values())
    assert len(visits) == 1, "every scheme must face the same crashes"


def test_run_drills_rejects_bad_inputs():
    with pytest.raises(ValueError):
        run_drills([], SPEC, (2.0,))
    with pytest.raises(ValueError):
        run_drills([BBB], SPEC, ())
    with pytest.raises(ValueError):
        run_drills([BBB], SPEC, (2.0,), crashes=0)
    with pytest.raises(ValueError, match="unknown mutant"):
        run_drills([BBB], SPEC, (2.0,), mutants=("no-such-mutant",))


@pytest.mark.parametrize("mutate, fragment", [
    (lambda r: r.update(schema="repro.drill/v0"), "schema"),
    (lambda r: r.pop("battery_domain"), "battery_domain"),
    (lambda r: r.update(units=[]), "units"),
    (lambda r: r["units"][0].pop("rpo"), "rpo"),
    (lambda r: r["units"][0]["outcomes"].pop(ACKED_LOST), ACKED_LOST),
    (lambda r: r["units"][0]["outcomes"].update({ACKED_LOST: -1}), ">= 0"),
    (lambda r: r["units"][0]["rto"].update(total_cycles=-5), "rto"),
    (lambda r: r["per_scheme"].pop(canonical_name(BBB)), "per_scheme"),
])
def test_drill_validation_names_the_broken_field(mutate, fragment):
    report = _report()
    mutate(report)
    with pytest.raises(ValueError, match=fragment):
        validate_drill_report(report)
