"""Load-generator tests: spec validation, determinism, skew, mixes,
arrival processes, bursts."""

import random
from collections import Counter

import pytest

from repro.serve.loadgen import (OP_KINDS, Request, TenantSpec, TrafficSpec,
                                 ZipfSampler, iter_requests, think_time)


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------

def test_tenant_fractions_must_sum_to_one():
    with pytest.raises(ValueError, match="sum to 1"):
        TenantSpec("t", read_fraction=0.5, update_fraction=0.5,
                   insert_fraction=0.5)


@pytest.mark.parametrize("kwargs", [
    {"requests": 0},
    {"tenants": ()},
    {"tenants": (TenantSpec("a"), TenantSpec("a"))},
    {"zipf_theta": 1.0},
    {"arrival": "batch"},
    {"offered_load": 0.0},
    {"clients": 0},
    {"think_cycles": -1},
    {"burst_every": 100, "burst_len": 100},
    {"burst_factor": 0.0},
])
def test_traffic_spec_validation(kwargs):
    with pytest.raises(ValueError):
        TrafficSpec(**kwargs)


def test_with_load_replaces_only_the_load():
    spec = TrafficSpec(requests=10, seed=3)
    hot = spec.with_load(8.0)
    assert hot.offered_load == 8.0
    assert hot.requests == spec.requests and hot.seed == spec.seed


# ----------------------------------------------------------------------
# Determinism and shape
# ----------------------------------------------------------------------

def _spec(**kw):
    defaults = dict(requests=400, seed=11)
    defaults.update(kw)
    return TrafficSpec(**defaults)


def test_iter_requests_is_deterministic():
    spec = _spec()
    assert list(iter_requests(spec)) == list(iter_requests(spec))
    assert list(iter_requests(spec)) != list(
        iter_requests(_spec(seed=12))
    )


def test_open_loop_arrivals_are_monotone():
    reqs = list(iter_requests(_spec()))
    assert len(reqs) == 400
    assert all(isinstance(r, Request) for r in reqs)
    arrivals = [r.arrival for r in reqs]
    assert arrivals == sorted(arrivals)
    assert all(r.client == -1 for r in reqs)
    assert {r.op for r in reqs} <= set(OP_KINDS)


def test_closed_loop_assigns_clients_round_robin():
    reqs = list(iter_requests(_spec(arrival="closed", clients=4)))
    assert [r.client for r in reqs[:8]] == [0, 1, 2, 3, 0, 1, 2, 3]
    assert all(r.arrival == 0 for r in reqs)


def test_offered_load_scales_arrival_density():
    slow = list(iter_requests(_spec(offered_load=0.5)))[-1].arrival
    fast = list(iter_requests(_spec(offered_load=8.0)))[-1].arrival
    # 16x the load should compress the span by an order of magnitude.
    assert fast * 4 < slow


def test_bursts_compress_arrivals_inside_the_window():
    spec = _spec(requests=2000, offered_load=0.5, burst_every=4000,
                 burst_len=1000, burst_factor=10.0)
    reqs = list(iter_requests(spec))
    in_burst = sum(1 for r in reqs if (r.arrival % 4000) < 1000)
    # The burst window is 1/4 of the time at 10x the rate, so the
    # arrival *density* inside it must clearly exceed the time share
    # (gaps drawn outside a window can overshoot it, so the fraction
    # stays below the naive 10:1 rate ratio).
    assert in_burst > len(reqs) * 0.35


def test_tenant_weights_shape_the_mix():
    spec = _spec(requests=2000, tenants=(
        TenantSpec("big", weight=9.0), TenantSpec("small", weight=1.0),
    ))
    counts = Counter(r.tenant for r in iter_requests(spec))
    assert counts["big"] > counts["small"] * 4


def test_op_mix_tracks_fractions():
    spec = _spec(requests=3000, tenants=(
        TenantSpec("t", read_fraction=0.9, update_fraction=0.1,
                   insert_fraction=0.0),
    ))
    counts = Counter(r.op for r in iter_requests(spec))
    assert counts["read"] > counts["update"] * 5
    assert counts.get("insert", 0) == 0


def test_insert_keys_grow_the_keyspace():
    spec = _spec(requests=500, tenants=(
        TenantSpec("t", keys=64, read_fraction=0.0, update_fraction=0.0,
                   insert_fraction=1.0),
    ))
    keys = [r.key for r in iter_requests(spec)]
    assert keys == list(range(64, 64 + 500))


# ----------------------------------------------------------------------
# Zipf sampler
# ----------------------------------------------------------------------

def test_zipf_skew_concentrates_on_hot_ranks():
    rng = random.Random(7)
    sampler = ZipfSampler(1000, 0.99)
    draws = Counter(sampler.sample(rng) for _ in range(5000))
    hot = sum(draws[r] for r in range(10))
    assert hot > 5000 * 0.4           # top-1% of keys absorb >40%
    assert max(draws) < sampler.n     # in range


def test_zipf_theta_zero_is_uniform():
    rng = random.Random(7)
    sampler = ZipfSampler(100, 0.0)
    draws = Counter(sampler.sample(rng) for _ in range(10000))
    assert max(draws.values()) < 10000 * 0.05


def test_zipf_validation():
    with pytest.raises(ValueError):
        ZipfSampler(0, 0.5)
    with pytest.raises(ValueError):
        ZipfSampler(10, 1.0)


def test_think_time_zero_mean_is_zero():
    spec = _spec(arrival="closed", think_cycles=0)
    assert think_time(spec, random.Random(1)) == 0
