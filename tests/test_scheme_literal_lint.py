"""Static gate: scheme-name string literals live only in the registry.

The PR that introduced :mod:`repro.core.registry` replaced ~66 scattered
name comparisons with capability dispatch.  This AST walk keeps that from
regressing: any string constant in ``src/repro`` exactly equal to a
registered scheme name or alias — outside ``core/registry.py`` and
outside docstrings — fails the build.

Docstrings are exempt (prose legitimately names schemes); so are tests
and examples (they exercise the public string API on purpose).
"""

import ast
from pathlib import Path

from repro.core.registry import iter_schemes, scheme_names

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
EXEMPT = SRC / "core" / "registry.py"


def _docstring_ids(tree):
    """ids of Constant nodes that are docstrings of a module/class/def."""
    ids = set()
    for node in ast.walk(tree):
        if isinstance(
            node,
            (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef),
        ):
            body = getattr(node, "body", [])
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                ids.add(id(body[0].value))
    return ids


def find_scheme_literals(path):
    """(lineno, literal) for every scheme-name constant in ``path``."""
    names = set(scheme_names(include_aliases=True))
    tree = ast.parse(path.read_text(), filename=str(path))
    docstrings = _docstring_ids(tree)
    hits = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and node.value in names
            and id(node) not in docstrings
        ):
            hits.append((node.lineno, node.value))
    return hits


def test_no_scheme_name_literals_outside_registry():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path == EXEMPT:
            continue
        for lineno, literal in find_scheme_literals(path):
            offenders.append(
                f"{path.relative_to(SRC.parent.parent)}:{lineno}: {literal!r}"
            )
    assert not offenders, (
        "scheme-name string literals outside core/registry.py (dispatch on "
        "the registry instead):\n  " + "\n  ".join(offenders)
    )


def test_lint_walk_covers_the_serve_package():
    # The serving frontend dispatches on registry constants, never name
    # literals; make sure the walk actually visits it (a package rename
    # must not silently drop it from the gate).
    scanned = {p for p in SRC.rglob("*.py") if p != EXEMPT}
    serve = sorted((SRC / "serve").glob("*.py"))
    assert serve, "src/repro/serve has no modules to lint"
    for path in serve:
        assert path in scanned, f"{path} escaped the scheme-literal lint"


def test_lint_walk_covers_the_litmus_package():
    # The litmus battery dispatches over iter_schemes() and registry
    # capabilities only — a scheme-name literal there would hardcode the
    # very matrix rows the battery is meant to derive.  Keep the package
    # inside the walk.
    scanned = {p for p in SRC.rglob("*.py") if p != EXEMPT}
    litmus = sorted((SRC / "litmus").glob("*.py"))
    assert litmus, "src/repro/litmus has no modules to lint"
    for path in litmus:
        assert path in scanned, f"{path} escaped the scheme-literal lint"


def test_lint_walk_covers_the_opt_package():
    # The persist optimizer elides instrumentation purely from each
    # scheme's declared ordering contract; a scheme-name literal there
    # would turn a capability decision back into a name switch.  Keep
    # every optimizer module inside the walk.
    scanned = {p for p in SRC.rglob("*.py") if p != EXEMPT}
    opt = sorted((SRC / "opt").glob("*.py"))
    assert opt, "src/repro/opt has no modules to lint"
    for path in opt:
        assert path in scanned, f"{path} escaped the scheme-literal lint"


def test_registry_is_where_the_names_live():
    # The exempt file must actually define every builtin canonical name,
    # so the lint cannot be "satisfied" by deleting the registry.  (Plugin
    # schemes registered by examples/tests live in their own modules.)
    text = EXEMPT.read_text()
    for info in iter_schemes():
        if info.builtin:
            assert f'"{info.name}"' in text, info.name
