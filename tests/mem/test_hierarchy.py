"""Unit tests for the memory hierarchy (repro.mem.hierarchy): load/store
paths, coherence transitions, inclusion, writebacks, and flush semantics."""

import pytest

from repro.mem.block import E, I, M, S
from repro.sim.config import SystemConfig
from repro.api import build_system
from repro.sim.system import System
from tests.conftest import conflict_addresses, daddr, paddr


@pytest.fixture
def system(small_config):
    return build_system("none", config=small_config)


@pytest.fixture
def h(system):
    return system.hierarchy


class TestLoadPath:
    def test_cold_load_misses_to_memory(self, system, h, small_config):
        addr = paddr(small_config, 0)
        value, done = h.load(0, addr, 8, now=0)
        assert value == 0
        # L1 tag + LLC tag + NVMM read latency
        expected = (
            small_config.l1d.hit_latency
            + small_config.llc.hit_latency
            + small_config.mem.nvmm_read_cycles
        )
        assert done == expected
        assert h.stats.core[0].l1_misses == 1
        assert h.stats.llc_misses == 1

    def test_second_load_hits_l1(self, h, small_config):
        addr = paddr(small_config, 0)
        h.load(0, addr, 8, 0)
        _, done = h.load(0, addr, 8, 1000)
        assert done == 1000 + small_config.l1d.hit_latency
        assert h.stats.core[0].l1_hits == 1

    def test_dram_load_uses_dram_latency(self, h, small_config):
        addr = daddr(small_config, 0)
        _, done = h.load(0, addr, 8, 0)
        expected = (
            small_config.l1d.hit_latency
            + small_config.llc.hit_latency
            + small_config.mem.dram_read_cycles
        )
        assert done == expected
        assert h.stats.dram_reads == 1

    def test_load_after_remote_load_hits_llc(self, h, small_config):
        addr = paddr(small_config, 0)
        h.load(0, addr, 8, 0)
        _, done = h.load(1, addr, 8, 1000)
        assert done == 1000 + small_config.l1d.hit_latency + small_config.llc.hit_latency
        assert h.stats.llc_hits == 1

    def test_exclusive_fill_when_alone(self, h, small_config):
        addr = paddr(small_config, 0)
        h.load(0, addr, 8, 0)
        assert h.l1_state(0, addr) is E

    def test_shared_fill_when_another_core_has_it(self, h, small_config):
        addr = paddr(small_config, 0)
        h.load(0, addr, 8, 0)
        h.load(1, addr, 8, 0)
        assert h.l1_state(1, addr) is S

    def test_load_returns_stored_value(self, h, small_config):
        addr = paddr(small_config, 0, offset=16)
        h.store(0, addr, 8, 0xFEEDFACE, 0)
        value, _ = h.load(0, addr, 8, 10)
        assert value == 0xFEEDFACE


class TestStorePath:
    def test_store_brings_block_to_m(self, h, small_config):
        addr = paddr(small_config, 0)
        h.store(0, addr, 8, 1, 0)
        assert h.l1_state(0, addr) is M
        assert h.directory.entry(
            addr & ~(small_config.block_size - 1)
        ).owner == 0

    def test_store_cost_is_one_cycle_plus_stall(self, h, small_config):
        addr = paddr(small_config, 0)
        done, persistent = h.store(0, addr, 8, 1, now=100)
        assert done == 101  # no scheme stalls under NoPersistency
        assert persistent

    def test_store_classifies_persistence_by_region(self, h, small_config):
        _, p1 = h.store(0, paddr(small_config, 0), 8, 1, 0)
        _, p2 = h.store(0, daddr(small_config, 0), 8, 1, 0)
        assert p1 and not p2
        assert h.stats.core[0].persisting_stores == 1
        assert h.stats.core[0].stores == 2

    def test_silent_e_to_m_upgrade(self, h, small_config):
        addr = paddr(small_config, 0)
        h.load(0, addr, 8, 0)
        assert h.l1_state(0, addr) is E
        h.store(0, addr, 8, 1, 10)
        assert h.l1_state(0, addr) is M

    def test_upgrade_invalidates_other_sharers(self, h, small_config):
        addr = paddr(small_config, 0)
        h.load(0, addr, 8, 0)
        h.load(1, addr, 8, 0)
        assert h.l1_state(0, addr) is S and h.l1_state(1, addr) is S
        h.store(0, addr, 8, 1, 10)
        assert h.l1_state(0, addr) is M
        assert h.l1_state(1, addr) is I

    def test_read_exclusive_pulls_dirty_data_from_owner(self, h, small_config):
        addr = paddr(small_config, 0)
        h.store(0, addr, 8, 0x11, 0)
        h.store(1, addr + 8, 8, 0x22, 10)  # same block, other core
        assert h.l1_state(0, addr) is I
        assert h.l1_state(1, addr) is M
        value, _ = h.load(1, addr, 8, 20)
        assert value == 0x11  # core 0's bytes travelled with the block

    def test_dirty_block_moves_between_cores_preserving_both_writes(
        self, h, small_config
    ):
        addr = paddr(small_config, 0)
        h.store(0, addr, 8, 0xA, 0)
        h.store(1, addr, 8, 0xB, 10)
        h.store(0, addr + 8, 8, 0xC, 20)
        v0, _ = h.load(0, addr, 8, 30)
        v1, _ = h.load(0, addr + 8, 8, 40)
        assert (v0, v1) == (0xB, 0xC)


class TestIntervention:
    def test_read_downgrades_remote_m_copy(self, h, small_config):
        addr = paddr(small_config, 0)
        h.store(0, addr, 8, 0x77, 0)
        value, _ = h.load(1, addr, 8, 100)
        assert value == 0x77
        assert h.l1_state(0, addr) is S
        assert h.l1_state(1, addr) is S

    def test_intervention_marks_llc_dirty(self, h, small_config):
        addr = paddr(small_config, 0)
        h.store(0, addr, 8, 0x77, 0)
        h.load(1, addr, 8, 100)
        blk = h.llc_block(addr)
        assert blk.dirty
        assert blk.persistent


class TestEvictionsAndInclusion:
    def test_l1_eviction_writes_back_to_llc(self, h, small_config):
        base = paddr(small_config, 0)
        h.store(0, base, 8, 0x42, 0)
        # Fill core 0's L1 set until the block is evicted.
        sets = small_config.l1d.num_sets
        for i in range(1, small_config.l1d.assoc + 1):
            h.load(0, base + i * sets * small_config.block_size, 8, i * 100)
        assert h.l1_state(0, base) is I
        llc_blk = h.llc_block(base)
        assert llc_blk is not None and llc_blk.dirty
        assert llc_blk.data.read_word(0, 8) == 0x42

    def test_llc_eviction_back_invalidates_l1(self, h, small_config):
        base = paddr(small_config, 0)
        h.store(0, base, 8, 0x42, 0)
        for i, addr in enumerate(
            conflict_addresses(small_config, base, small_config.llc.assoc)
        ):
            h.load(1, addr, 8, (i + 1) * 1000)
        assert h.llc_block(base) is None
        assert h.l1_state(0, base) is I  # inclusion enforced

    def test_llc_eviction_writes_back_nvmm(self, h, small_config):
        # Under NoPersistency (no silent drop) the dirty block must reach
        # the media.
        base = paddr(small_config, 0)
        h.store(0, base, 8, 0x42, 0)
        for i, addr in enumerate(
            conflict_addresses(small_config, base, small_config.llc.assoc)
        ):
            h.load(1, addr, 8, (i + 1) * 1000)
        assert h.nvmm.media.read_word(base, 8) == 0x42
        assert h.stats.llc_writebacks >= 1

    def test_dram_block_llc_eviction_writes_volatile_image(self, h, small_config):
        base = daddr(small_config, 0)
        h.store(0, base, 8, 0x99, 0)
        for i, addr in enumerate(
            conflict_addresses(small_config, base, small_config.llc.assoc)
        ):
            h.load(1, addr, 8, (i + 1) * 1000)
        baddr = base & ~(small_config.block_size - 1)
        assert h.volatile_image[baddr].read_word(0, 8) == 0x99
        assert h.stats.dram_writes >= 1


class TestFlush:
    def test_flush_writes_current_value_to_media(self, h, small_config):
        addr = paddr(small_config, 0)
        h.store(0, addr, 8, 0x1234, 0)
        done = h.flush_block_to_wpq(0, addr, 100)
        assert done > 100
        assert h.nvmm.media.read_word(addr, 8) == 0x1234

    def test_flush_marks_copies_clean(self, h, small_config):
        addr = paddr(small_config, 0)
        h.store(0, addr, 8, 0x1234, 0)
        h.flush_block_to_wpq(0, addr, 100)
        baddr = addr & ~(small_config.block_size - 1)
        assert not h.l1s[0].lookup(baddr, touch=False).dirty

    def test_flush_clean_block_is_noop(self, h, small_config):
        addr = paddr(small_config, 0)
        h.load(0, addr, 8, 0)
        before = h.stats.nvmm_writes
        assert h.flush_block_to_wpq(0, addr, 100) == 100
        assert h.stats.nvmm_writes == before

    def test_flush_dram_block_is_noop(self, h, small_config):
        addr = daddr(small_config, 0)
        h.store(0, addr, 8, 1, 0)
        assert h.flush_block_to_wpq(0, addr, 100) == 100


class TestCrashSupport:
    def test_lose_volatile_state_clears_everything(self, h, small_config):
        addr = paddr(small_config, 0)
        h.store(0, addr, 8, 1, 0)
        h.lose_volatile_state()
        assert h.l1_state(0, addr) is I
        assert h.llc_block(addr) is None
        assert not h.volatile_image
