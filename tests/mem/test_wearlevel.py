"""Tests for Start-Gap wear leveling (repro.mem.wearlevel)."""

import random

import pytest

from repro.mem.block import BlockData
from repro.mem.wearlevel import StartGapRemapper, WearLevelledMedia


def word(v, off=0):
    d = BlockData()
    d.write_word(off, v)
    return d


class TestRemapper:
    def test_initial_identity_mapping(self):
        r = StartGapRemapper(8)
        assert r.mapping_snapshot() == {i: i for i in range(8)}

    def test_mapping_is_always_a_bijection(self):
        r = StartGapRemapper(8, psi=1)
        for _ in range(50):
            snapshot = r.mapping_snapshot()
            assert len(set(snapshot.values())) == 8
            assert all(0 <= pa <= 8 for pa in snapshot.values())
            assert r.gap not in snapshot.values()  # the gap is unmapped
            r.note_write()

    def test_gap_moves_every_psi_writes(self):
        r = StartGapRemapper(8, psi=3)
        moves = sum(1 for _ in range(9) if r.note_write() is not None)
        assert moves == 3
        assert r.gap_moves == 3

    def test_gap_wrap_advances_start(self):
        r = StartGapRemapper(4, psi=1)
        for _ in range(4):
            r.note_write()
        assert r.gap == 0
        move = r.note_write()  # wrap
        assert r.gap == 4
        assert r.start == 1
        assert move == (4, 0)  # top slot relocates to the bottom

    def test_full_rotation_visits_every_slot(self):
        """After N+1 gap moves x N rotations, a logical line has occupied
        many distinct physical slots."""
        r = StartGapRemapper(4, psi=1)
        seen = set()
        for _ in range(4 * 5 * 3):
            seen.add(r.physical(0))
            r.note_write()
        assert len(seen) == 5  # all physical slots incl. the spare

    def test_bounds_checked(self):
        r = StartGapRemapper(4)
        with pytest.raises(IndexError):
            r.physical(4)
        with pytest.raises(ValueError):
            StartGapRemapper(0)
        with pytest.raises(ValueError):
            StartGapRemapper(4, psi=0)


class TestWearLevelledMedia:
    def test_data_integrity_under_rotation(self):
        media = WearLevelledMedia(base=0, size=8 * 64, psi=2)
        shadow = {}
        rng = random.Random(7)
        for i in range(1000):
            blk = rng.randrange(8) * 64
            media.write_block(blk, word(i + 1))
            shadow[blk] = i + 1
        for blk, value in shadow.items():
            assert media.peek_block(blk).read_word(0) == value

    def test_sparse_bytes_do_not_leak_between_lines(self):
        media = WearLevelledMedia(base=0, size=4 * 64, psi=1)
        media.write_block(0, word(0xAA, off=0))
        for i in range(10):  # force several relocations
            media.write_block(64, word(i, off=8))
        blk = media.peek_block(0)
        assert blk.read_word(0) == 0xAA
        assert blk.read_word(8) == 0  # neighbour's bytes never bleed in

    def test_hot_line_wear_is_spread(self):
        """A single-hot-line workload: without leveling one physical line
        takes every write; with Start-Gap the hottest physical line takes
        far fewer."""
        from repro.mem.nvmm import NVMMedia

        writes = 4000
        plain = NVMMedia(base=0, size=16 * 64)
        for i in range(writes):
            plain.write_block(0, word(i))
        assert plain.max_block_writes() == writes

        levelled = WearLevelledMedia(base=0, size=16 * 64, psi=10)
        for i in range(writes):
            levelled.write_block(0, word(i))
        assert levelled.max_block_writes() < writes / 4

    def test_write_overhead_is_one_per_psi(self):
        media = WearLevelledMedia(base=0, size=8 * 64, psi=10)
        for i in range(100):
            media.write_block(0, word(i))
        # 100 data writes + 10 relocation copies.
        assert media.total_writes == 110

    def test_read_block_returns_copy(self):
        media = WearLevelledMedia(base=0, size=4 * 64)
        media.write_block(0, word(5))
        copy = media.read_block(0)
        copy.write(0, 99)
        assert media.peek_block(0).read_word(0) == 5
