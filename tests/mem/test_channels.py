"""Tests for the multi-channel NVMM controller."""

import dataclasses

import pytest

from repro.mem.block import BlockData
from repro.mem.memctrl import NVMMController
from repro.sim.config import MemConfig
from repro.sim.stats import SimStats


def mem(channels):
    return MemConfig(
        dram_bytes=1 << 20,
        nvmm_bytes=1 << 20,
        persistent_bytes=1 << 19,
        nvmm_channels=channels,
    )


def controller(channels):
    return NVMMController(mem(channels), SimStats(num_cores=1))


class TestChannelMapping:
    def test_blocks_interleave(self):
        mc = controller(4)
        base = mc.config.nvmm_base
        assert [mc.channel_of(base + i * 64) for i in range(5)] == [0, 1, 2, 3, 0]

    def test_single_channel_everything_maps_to_zero(self):
        mc = controller(1)
        base = mc.config.nvmm_base
        assert all(mc.channel_of(base + i * 64) == 0 for i in range(8))

    def test_zero_channels_rejected(self):
        with pytest.raises(ValueError):
            mem(0)


class TestParallelAcceptance:
    def test_different_channels_accept_in_parallel(self):
        mc = controller(4)
        base = mc.config.nvmm_base
        times = [
            mc.write(base + i * 64, BlockData({0: i}), 0) for i in range(4)
        ]
        # Four distinct channels: all accept without queueing.
        assert times == [mc.config.wpq_accept_cycles] * 4

    def test_same_channel_serialises(self):
        mc = controller(4)
        base = mc.config.nvmm_base
        t1 = mc.write(base, BlockData({0: 1}), 0)
        t2 = mc.write(base + 4 * 64, BlockData({0: 2}), 0)  # same channel
        assert t2 == t1 + mc.config.wpq_accept_cycles

    def test_burst_throughput_scales_with_channels(self):
        def burst_finish(channels, blocks=16):
            mc = controller(channels)
            base = mc.config.nvmm_base
            return max(
                mc.write(base + i * 64, BlockData({0: i}), 0)
                for i in range(blocks)
            )

        assert burst_finish(4) < burst_finish(1)
        assert burst_finish(1) == 16 * 20  # fully serialised

    def test_port_free_reports_latest_channel(self):
        mc = controller(2)
        base = mc.config.nvmm_base
        mc.write(base, BlockData({0: 1}), 0)
        mc.write(base, BlockData({0: 2}), 0)  # channel 0 again
        assert mc.port_free == 2 * mc.config.wpq_accept_cycles


class TestEndToEndEffect:
    def test_more_channels_reduce_bbpb_stalls(self):
        """A store burst on a 1-entry bbPB: drain completion (and thus core
        stalls) should improve with channel count."""
        from repro.sim.config import SystemConfig
        from repro.api import build_system
        from repro.sim.trace import ProgramTrace, ThreadTrace, TraceOp

        def run(channels):
            cfg = SystemConfig(num_cores=1).scaled_for_testing()
            cfg = dataclasses.replace(
                cfg, mem=dataclasses.replace(cfg.mem, nvmm_channels=channels)
            )
            ops = [
                TraceOp.store(cfg.mem.persistent_base + i * 64, i + 1)
                for i in range(64)
            ]
            system = build_system("bbb", config=cfg, entries=1)
            result = system.run(ProgramTrace([ThreadTrace(ops)]), finalize=False)
            return result.stats.total_bbpb_stalls

        assert run(8) <= run(1)
