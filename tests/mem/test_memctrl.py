"""Unit tests for the memory controllers (repro.mem.memctrl)."""

import pytest

from repro.mem.block import BlockData
from repro.mem.memctrl import DRAMController, NVMMController
from repro.sim.config import MemConfig
from repro.sim.stats import SimStats


@pytest.fixture
def mem():
    return MemConfig(
        dram_bytes=1 << 20, nvmm_bytes=1 << 20, persistent_bytes=1 << 19
    )


@pytest.fixture
def stats():
    return SimStats(num_cores=1)


def nvmm_block(mem, i=0):
    return mem.nvmm_base + i * 64


class TestDRAM:
    def test_read_latency(self, mem, stats):
        dram = DRAMController(mem, stats)
        assert dram.read(100) == 100 + mem.dram_read_cycles
        assert stats.dram_reads == 1

    def test_write_latency(self, mem, stats):
        dram = DRAMController(mem, stats)
        assert dram.write(0) == mem.dram_write_cycles
        assert stats.dram_writes == 1


class TestNVMMReads:
    def test_read_latency_and_counter(self, mem, stats):
        mc = NVMMController(mem, stats)
        data, done = mc.read(nvmm_block(mem), 50)
        assert done == 50 + mem.nvmm_read_cycles
        assert stats.nvmm_reads == 1
        assert not data  # unwritten block reads empty

    def test_read_sees_accepted_write(self, mem, stats):
        mc = NVMMController(mem, stats)
        payload = BlockData({0: 0xAA})
        mc.write(nvmm_block(mem), payload, 0)
        data, _ = mc.read(nvmm_block(mem), 1000)
        assert data.read(0) == 0xAA


class TestNVMMWrites:
    def test_acceptance_is_durable_immediately(self, mem, stats):
        mc = NVMMController(mem, stats)
        mc.write(nvmm_block(mem), BlockData({1: 7}), 0)
        # Durable at acceptance: visible in the media image right away.
        assert mc.media.peek_block(nvmm_block(mem)).read(1) == 7

    def test_write_counts_media_writes(self, mem, stats):
        mc = NVMMController(mem, stats)
        mc.write(nvmm_block(mem), BlockData({0: 1}), 0)
        mc.write(nvmm_block(mem), BlockData({0: 2}), 100)
        assert stats.nvmm_writes == 2
        assert mc.media.write_counts[nvmm_block(mem)] == 2

    def test_port_contention_serialises_accepts(self, mem, stats):
        mc = NVMMController(mem, stats)
        t1 = mc.write(nvmm_block(mem, 0), BlockData({0: 1}), 0)
        t2 = mc.write(nvmm_block(mem, 1), BlockData({0: 2}), 0)
        assert t1 == mem.wpq_accept_cycles
        assert t2 == 2 * mem.wpq_accept_cycles  # queued behind the first

    def test_port_idles_between_spaced_writes(self, mem, stats):
        mc = NVMMController(mem, stats)
        mc.write(nvmm_block(mem, 0), BlockData({0: 1}), 0)
        t2 = mc.write(nvmm_block(mem, 1), BlockData({0: 2}), 10_000)
        assert t2 == 10_000 + mem.wpq_accept_cycles

    def test_sequential_values_overlay(self, mem, stats):
        mc = NVMMController(mem, stats)
        mc.write(nvmm_block(mem), BlockData({0: 1, 1: 2}), 0)
        mc.write(nvmm_block(mem), BlockData({1: 9}), 100)
        blk = mc.media.peek_block(nvmm_block(mem))
        assert (blk.read(0), blk.read(1)) == (1, 9)

    def test_drain_all_on_failure_is_empty(self, mem, stats):
        mc = NVMMController(mem, stats)
        mc.write(nvmm_block(mem), BlockData({0: 1}), 0)
        assert mc.drain_all_on_failure() == 0  # WPQ folded into acceptance
