"""Unit tests for the NVMM media model (repro.mem.nvmm)."""

import pytest

from repro.mem.block import BlockData
from repro.mem.nvmm import NVMMedia


@pytest.fixture
def media():
    return NVMMedia(base=0x10000, size=0x10000, block_size=64)


class TestBounds:
    def test_out_of_range_write_rejected(self, media):
        with pytest.raises(ValueError):
            media.write_block(0x0, BlockData({0: 1}))

    def test_unaligned_write_rejected(self, media):
        with pytest.raises(ValueError):
            media.write_block(0x10001, BlockData({0: 1}))

    def test_limit_is_exclusive(self, media):
        with pytest.raises(ValueError):
            media.write_block(0x20000, BlockData({0: 1}))


class TestReadWrite:
    def test_write_then_read(self, media):
        media.write_block(0x10000, BlockData({3: 0x5A}))
        assert media.read_block(0x10000).read(3) == 0x5A

    def test_overlay_semantics(self, media):
        media.write_block(0x10000, BlockData({0: 1, 1: 2}))
        media.write_block(0x10000, BlockData({1: 9}))
        blk = media.peek_block(0x10000)
        assert (blk.read(0), blk.read(1)) == (1, 9)

    def test_read_returns_copy(self, media):
        media.write_block(0x10000, BlockData({0: 1}))
        copy = media.read_block(0x10000)
        copy.write(0, 99)
        assert media.peek_block(0x10000).read(0) == 1

    def test_unwritten_block_reads_empty(self, media):
        assert not media.peek_block(0x10040)

    def test_read_word_crosses_into_block(self, media):
        media.write_block(0x10000, BlockData({8: 0xEF, 9: 0xBE}))
        assert media.read_word(0x10008, size=2) == 0xBEEF


class TestAccounting:
    def test_write_counters(self, media):
        media.write_block(0x10000, BlockData({0: 1}))
        media.write_block(0x10000, BlockData({0: 2}))
        media.write_block(0x10040, BlockData({0: 3}))
        assert media.total_writes == 3
        assert media.write_counts[0x10000] == 2
        assert media.max_block_writes() == 2

    def test_read_counter_distinguishes_peek(self, media):
        media.write_block(0x10000, BlockData({0: 1}))
        media.read_block(0x10000)
        media.peek_block(0x10000)
        assert media.total_reads == 1

    def test_written_blocks(self, media):
        media.write_block(0x10000, BlockData({0: 1}))
        media.write_block(0x10080, BlockData({0: 2}))
        assert set(media.written_blocks()) == {0x10000, 0x10080}


class TestCopy:
    def test_copy_is_deep(self, media):
        media.write_block(0x10000, BlockData({0: 1}))
        clone = media.copy()
        clone.write_block(0x10000, BlockData({0: 9}))
        assert media.peek_block(0x10000).read(0) == 1
        assert clone.peek_block(0x10000).read(0) == 9
        assert clone.total_writes == media.total_writes + 1

    def test_image_snapshot(self, media):
        media.write_block(0x10000, BlockData({0: 1}))
        image = media.image()
        image[0x10000].write(0, 5)
        assert media.peek_block(0x10000).read(0) == 1
