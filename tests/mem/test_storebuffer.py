"""Unit tests for the store buffer (repro.mem.storebuffer)."""

import pytest

from repro.mem.storebuffer import StoreBuffer


class TestCapacity:
    def test_requires_positive_capacity(self):
        with pytest.raises(ValueError):
            StoreBuffer(0)

    def test_full_flag(self):
        sb = StoreBuffer(2)
        sb.push(0x100, 1, 8, False)
        assert not sb.full
        sb.push(0x108, 2, 8, False)
        assert sb.full

    def test_push_when_full_raises(self):
        sb = StoreBuffer(1)
        sb.push(0x100, 1, 8, False)
        with pytest.raises(RuntimeError):
            sb.push(0x108, 2, 8, False)


class TestOrdering:
    def test_fifo_pop(self):
        sb = StoreBuffer(4)
        sb.push(0x100, 1, 8, False)
        sb.push(0x108, 2, 8, False)
        assert sb.pop_oldest().value == 1
        assert sb.pop_oldest().value == 2
        assert sb.pop_oldest() is None

    def test_seq_is_monotonic(self):
        sb = StoreBuffer(4)
        e1 = sb.push(0x100, 1, 8, False)
        e2 = sb.push(0x108, 2, 8, False)
        assert e2.seq > e1.seq

    def test_pop_any_removes_middle(self):
        sb = StoreBuffer(4)
        sb.push(0x100, 1, 8, False)
        sb.push(0x108, 2, 8, False)
        sb.push(0x110, 3, 8, False)
        entry = sb.pop_any(1)
        assert entry.value == 2
        assert [e.value for e in sb.entries()] == [1, 3]


class TestForwarding:
    def test_forward_exact_match(self):
        sb = StoreBuffer(4)
        sb.push(0x100, 0xABCD, 8, False)
        assert sb.forward(0x100, 8) == 0xABCD

    def test_forward_youngest_wins(self):
        sb = StoreBuffer(4)
        sb.push(0x100, 1, 8, False)
        sb.push(0x100, 2, 8, False)
        assert sb.forward(0x100, 8) == 2

    def test_forward_contained_subword(self):
        sb = StoreBuffer(4)
        sb.push(0x100, 0x0102030405060708, 8, False)
        # bytes 2..3 of the little-endian value
        assert sb.forward(0x102, 2) == 0x0506

    def test_partial_overlap_declines(self):
        sb = StoreBuffer(4)
        sb.push(0x100, 1, 4, False)
        assert sb.forward(0x102, 4) is None  # spans beyond the store

    def test_no_match_returns_none(self):
        sb = StoreBuffer(4)
        sb.push(0x100, 1, 8, False)
        assert sb.forward(0x200, 8) is None


class TestCrashDrain:
    def test_volatile_sb_drains_nothing(self):
        sb = StoreBuffer(4, battery_backed=False)
        sb.push(0x100, 1, 8, True)
        assert sb.drain_order_on_crash() == []

    def test_battery_backed_sb_drains_in_program_order(self):
        sb = StoreBuffer(4, battery_backed=True)
        sb.push(0x100, 1, 8, True)
        sb.push(0x108, 2, 8, False)
        sb.push(0x110, 3, 8, True)
        drained = sb.drain_order_on_crash()
        assert [e.value for e in drained] == [1, 2, 3]

    def test_clear(self):
        sb = StoreBuffer(4)
        sb.push(0x100, 1, 8, False)
        sb.clear()
        assert len(sb) == 0
