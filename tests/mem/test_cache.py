"""Unit tests for the set-associative cache array (repro.mem.cache)."""

import pytest

from repro.mem.block import BlockData, CacheBlock, E, M, S
from repro.mem.cache import CacheArray
from repro.sim.config import CacheConfig


def make_cache(size=1024, assoc=2, block=64):
    return CacheArray(CacheConfig(size, assoc, block), name="test")


def blk(addr, state=E, dirty=False):
    return CacheBlock(addr, state=state, dirty=dirty)


class TestGeometry:
    def test_num_sets(self):
        cache = make_cache(1024, 2, 64)
        assert cache.config.num_sets == 8

    def test_set_index_wraps(self):
        cache = make_cache(1024, 2, 64)
        assert cache.set_index(0) == cache.set_index(8 * 64)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 3, 64)

    def test_non_power_of_two_block_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(1024, 2, 48)


class TestLookupInsert:
    def test_miss_returns_none(self):
        assert make_cache().lookup(0x40) is None

    def test_insert_then_hit(self):
        cache = make_cache()
        cache.insert(blk(0x40))
        hit = cache.lookup(0x40)
        assert hit is not None and hit.addr == 0x40

    def test_duplicate_insert_rejected(self):
        cache = make_cache()
        cache.insert(blk(0x40))
        with pytest.raises(ValueError):
            cache.insert(blk(0x40))

    def test_insert_invalid_block_rejected(self):
        cache = make_cache()
        with pytest.raises(ValueError):
            cache.insert(CacheBlock(0x40))  # state I

    def test_no_eviction_until_set_full(self):
        cache = make_cache(1024, 2, 64)  # 8 sets x 2 ways
        a, b = 0x000, 0x200  # same set (8 sets * 64 = 0x200 stride)
        assert cache.insert(blk(a)) is None
        assert cache.insert(blk(b)) is None

    def test_lru_eviction_picks_least_recent(self):
        cache = make_cache(1024, 2, 64)
        a, b, c = 0x000, 0x200, 0x400  # all same set
        cache.insert(blk(a))
        cache.insert(blk(b))
        cache.lookup(a)  # touch a, making b LRU
        victim = cache.insert(blk(c))
        assert victim is not None and victim.addr == b

    def test_victim_for_reports_future_eviction(self):
        cache = make_cache(1024, 2, 64)
        a, b, c = 0x000, 0x200, 0x400
        cache.insert(blk(a))
        assert cache.victim_for(c) is None  # free way remains
        cache.insert(blk(b))
        assert cache.victim_for(c).addr == a

    def test_different_sets_do_not_conflict(self):
        cache = make_cache(1024, 2, 64)
        for i in range(8):
            assert cache.insert(blk(i * 64)) is None

    def test_insert_reuses_invalidated_frame(self):
        cache = make_cache(1024, 2, 64)
        cache.insert(blk(0x000))
        cache.insert(blk(0x200))
        cache.remove(0x000)
        assert cache.insert(blk(0x400)) is None  # no eviction needed


class TestRemove:
    def test_remove_returns_block(self):
        cache = make_cache()
        cache.insert(blk(0x40, state=M, dirty=True))
        removed = cache.remove(0x40)
        assert removed.dirty
        assert cache.lookup(0x40) is None

    def test_remove_absent_returns_none(self):
        assert make_cache().remove(0x40) is None


class TestIntrospection:
    def test_occupancy_counts_valid_blocks(self):
        cache = make_cache()
        cache.insert(blk(0x00))
        cache.insert(blk(0x40))
        assert cache.occupancy() == 2

    def test_dirty_blocks_filter(self):
        cache = make_cache()
        cache.insert(blk(0x00, dirty=True))
        cache.insert(blk(0x40, dirty=False))
        assert [b.addr for b in cache.dirty_blocks()] == [0x00]

    def test_clear_drops_everything(self):
        cache = make_cache()
        cache.insert(blk(0x00))
        cache.clear()
        assert cache.occupancy() == 0

    def test_contains(self):
        cache = make_cache()
        cache.insert(blk(0x40))
        assert cache.contains(0x40)
        assert not cache.contains(0x80)

    def test_lookup_without_touch_preserves_lru(self):
        cache = make_cache(1024, 2, 64)
        a, b, c = 0x000, 0x200, 0x400
        cache.insert(blk(a))
        cache.insert(blk(b))
        cache.lookup(a, touch=False)  # must NOT refresh a
        victim = cache.insert(blk(c))
        assert victim.addr == a
