"""Unit tests for the directory bookkeeping (repro.mem.coherence)."""

import pytest

from repro.mem.coherence import CoherenceEvent, Directory, DirectoryEntry


@pytest.fixture
def directory():
    return Directory()


class TestEntryLifecycle:
    def test_entry_absent_initially(self, directory):
        assert directory.entry(0x40) is None

    def test_ensure_creates(self, directory):
        ent = directory.ensure(0x40)
        assert isinstance(ent, DirectoryEntry)
        assert directory.entry(0x40) is ent

    def test_ensure_idempotent(self, directory):
        assert directory.ensure(0x40) is directory.ensure(0x40)

    def test_drop(self, directory):
        directory.ensure(0x40)
        dropped = directory.drop(0x40)
        assert dropped is not None
        assert directory.entry(0x40) is None

    def test_drop_absent_returns_none(self, directory):
        assert directory.drop(0x40) is None

    def test_len(self, directory):
        directory.ensure(0x40)
        directory.ensure(0x80)
        assert len(directory) == 2


class TestPresence:
    def test_record_exclusive_sets_owner_and_sole_sharer(self, directory):
        directory.record_exclusive(0x40, core=1)
        ent = directory.entry(0x40)
        assert ent.owner == 1
        assert ent.sharers == {1}

    def test_record_shared_adds_sharer(self, directory):
        directory.record_shared(0x40, 0)
        directory.record_shared(0x40, 1)
        assert directory.entry(0x40).sharers == {0, 1}

    def test_shared_while_other_owner_raises(self, directory):
        directory.record_exclusive(0x40, 0)
        with pytest.raises(RuntimeError):
            directory.record_shared(0x40, 1)

    def test_owner_may_re_record_shared(self, directory):
        directory.record_exclusive(0x40, 0)
        directory.record_shared(0x40, 0)  # no-op, same core
        assert directory.entry(0x40).owner == 0

    def test_downgrade_clears_owner_keeps_sharer(self, directory):
        directory.record_exclusive(0x40, 0)
        directory.record_downgrade(0x40)
        ent = directory.entry(0x40)
        assert ent.owner is None
        assert 0 in ent.sharers

    def test_l1_eviction_removes_presence(self, directory):
        directory.record_exclusive(0x40, 0)
        directory.record_l1_eviction(0x40, 0)
        ent = directory.entry(0x40)
        assert ent.owner is None and not ent.sharers
        assert not ent.is_cached_anywhere()

    def test_l1_eviction_of_sharer_keeps_others(self, directory):
        directory.record_shared(0x40, 0)
        directory.record_shared(0x40, 1)
        directory.record_l1_eviction(0x40, 0)
        assert directory.entry(0x40).sharers == {1}

    def test_eviction_without_entry_is_noop(self, directory):
        directory.record_l1_eviction(0x40, 0)  # must not raise


class TestBBPBTracking:
    def test_set_and_get_owner(self, directory):
        directory.ensure(0x40)
        directory.set_bbpb_owner(0x40, 2)
        assert directory.bbpb_owner(0x40) == 2

    def test_clear_owner(self, directory):
        directory.ensure(0x40)
        directory.set_bbpb_owner(0x40, 2)
        directory.set_bbpb_owner(0x40, None)
        assert directory.bbpb_owner(0x40) is None

    def test_set_owner_without_llc_entry_violates_inclusion(self, directory):
        with pytest.raises(RuntimeError):
            directory.set_bbpb_owner(0x40, 1)

    def test_clearing_absent_entry_is_noop(self, directory):
        directory.set_bbpb_owner(0x40, None)  # must not raise

    def test_blocks_in_bbpb_map(self, directory):
        directory.ensure(0x40)
        directory.ensure(0x80)
        directory.set_bbpb_owner(0x40, 1)
        assert directory.blocks_in_bbpb() == {0x40: 1}


class TestEventVocabulary:
    def test_events_exist(self):
        names = {e.value for e in CoherenceEvent}
        assert {"Rd", "RdX", "Upgr", "Inv", "Int", "WB", "ForcedDrain"} <= names
