"""Unit tests for cache-line primitives (repro.mem.block)."""

import pytest

from repro.mem.block import (
    BlockData,
    CacheBlock,
    MESIState,
    E,
    I,
    M,
    S,
    block_address,
    block_offset,
)


class TestAddressHelpers:
    def test_block_address_aligns_down(self):
        assert block_address(0x1234, 64) == 0x1200

    def test_block_address_identity_for_aligned(self):
        assert block_address(0x1240, 64) == 0x1240

    def test_block_offset(self):
        assert block_offset(0x1234, 64) == 0x34

    def test_offset_plus_base_roundtrip(self):
        addr = 0xDEADBEEF
        assert block_address(addr, 64) + block_offset(addr, 64) == addr

    @pytest.mark.parametrize("size", [32, 64, 128])
    def test_other_block_sizes(self, size):
        addr = 5 * size + 7
        assert block_address(addr, size) == 5 * size
        assert block_offset(addr, size) == 7


class TestMESIState:
    def test_valid_states(self):
        assert M.is_valid and E.is_valid and S.is_valid
        assert not I.is_valid

    def test_writable_states(self):
        assert M.can_write and E.can_write
        assert not S.can_write and not I.can_write

    def test_aliases_match_enum(self):
        assert M is MESIState.MODIFIED
        assert E is MESIState.EXCLUSIVE
        assert S is MESIState.SHARED
        assert I is MESIState.INVALID


class TestBlockData:
    def test_unwritten_bytes_read_zero(self):
        assert BlockData().read(5) == 0

    def test_write_read_byte(self):
        d = BlockData()
        d.write(3, 0xAB)
        assert d.read(3) == 0xAB

    def test_write_masks_to_byte(self):
        d = BlockData()
        d.write(0, 0x1FF)
        assert d.read(0) == 0xFF

    def test_write_word_little_endian(self):
        d = BlockData()
        d.write_word(0, 0x0102030405060708, size=8)
        assert d.read(0) == 0x08
        assert d.read(7) == 0x01

    def test_read_word_roundtrip(self):
        d = BlockData()
        value = 0xDEADBEEFCAFEF00D
        d.write_word(8, value, size=8)
        assert d.read_word(8, size=8) == value

    def test_read_word_partial_sizes(self):
        d = BlockData()
        d.write_word(0, 0xAABBCCDD, size=4)
        assert d.read_word(0, size=4) == 0xAABBCCDD
        assert d.read_word(0, size=2) == 0xCCDD

    def test_merge_from_overlays(self):
        a = BlockData({0: 1, 1: 2})
        b = BlockData({1: 9, 2: 3})
        a.merge_from(b)
        assert (a.read(0), a.read(1), a.read(2)) == (1, 9, 3)

    def test_copy_is_independent(self):
        a = BlockData({0: 1})
        b = a.copy()
        b.write(0, 2)
        assert a.read(0) == 1

    def test_equality_is_value_based(self):
        a = BlockData({0: 0, 1: 5})
        b = BlockData({1: 5})
        assert a == b  # explicit zero equals unwritten zero

    def test_inequality(self):
        assert BlockData({0: 1}) != BlockData({0: 2})

    def test_bool_reflects_written_bytes(self):
        assert not BlockData()
        assert BlockData({0: 0})


class TestCacheBlock:
    def test_defaults(self):
        blk = CacheBlock(0x1000)
        assert blk.state is I
        assert not blk.valid
        assert not blk.dirty
        assert not blk.persistent

    def test_invalidate_clears_everything(self):
        blk = CacheBlock(0x40, state=M, dirty=True, persistent=True)
        blk.data.write(0, 7)
        blk.invalidate()
        assert blk.state is I
        assert not blk.dirty
        assert not blk.persistent
        assert not blk.data

    def test_valid_follows_state(self):
        blk = CacheBlock(0x40, state=S)
        assert blk.valid
