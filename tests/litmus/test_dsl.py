"""Litmus DSL: validation, serialization, and lowering geometry."""

import json

import pytest

from repro.analysis.experiments import default_sim_config
from repro.litmus.corpus import CORPUS, corpus_test
from repro.litmus.dsl import (
    LITMUS_SCHEMA,
    LitmusOp,
    LitmusTest,
    assign_addresses,
    compute,
    fence,
    fl,
    lower,
    observe_state,
    st,
)

CFG = default_sim_config()


def make(**overrides):
    base = dict(
        name="t",
        locations=("x", "y"),
        programs=((st("x", 1), st("y", 1)),),
    )
    base.update(overrides)
    return LitmusTest(**base)


class TestValidation:
    def test_minimal_test_is_valid(self):
        make()

    def test_needs_a_name(self):
        with pytest.raises(ValueError, match="needs a name"):
            make(name="")

    def test_duplicate_locations_rejected(self):
        with pytest.raises(ValueError, match="duplicate locations"):
            make(locations=("x", "x"))

    def test_needs_at_least_one_program(self):
        with pytest.raises(ValueError, match="at least one program"):
            make(programs=())

    def test_unknown_op_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown op kind"):
            make(programs=((LitmusOp("prefetch", loc="x"),),))

    def test_undeclared_location_rejected(self):
        with pytest.raises(ValueError, match="undeclared location"):
            make(programs=((st("z", 1),),))

    def test_store_value_must_be_positive(self):
        # 0 is the initial state, so a 0-store would be invisible.
        with pytest.raises(ValueError, match="positive value"):
            make(programs=((LitmusOp("store", loc="x", value=0),),))

    def test_store_values_unique_per_location(self):
        with pytest.raises(ValueError, match="not unique"):
            make(programs=((st("x", 1), st("x", 1)),))

    def test_same_value_on_different_locations_is_fine(self):
        make(programs=((st("x", 1), st("y", 1)),))

    def test_compute_needs_positive_cycles(self):
        with pytest.raises(ValueError, match="positive"):
            make(programs=((compute(0),),))

    def test_expect_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            make(expect={"vibes": {"allowed": ((0, 0),)}})

    def test_expect_bad_key_rejected(self):
        with pytest.raises(ValueError, match="'allowed' or 'forbidden'"):
            make(expect={"strict": {"maybe": ((0, 0),)}})

    def test_expect_state_width_must_match_locations(self):
        with pytest.raises(ValueError, match="layout"):
            make(expect={"strict": {"allowed": ((0, 0, 0),)}})

    def test_placement_group_needs_two_members(self):
        with pytest.raises(ValueError, match=">= 2"):
            make(same_block=(("x",),))

    def test_placement_member_must_be_declared(self):
        with pytest.raises(ValueError, match="not a declared location"):
            make(conflict_groups=(("x", "z"),))

    def test_location_in_two_placement_groups_rejected(self):
        with pytest.raises(ValueError, match="two placement groups"):
            make(same_block=(("x", "y"),), conflict_groups=(("x", "y"),))


class TestSerialization:
    @pytest.mark.parametrize("test", CORPUS, ids=lambda t: t.name)
    def test_corpus_round_trips_through_json(self, test):
        payload = json.loads(json.dumps(test.to_payload()))
        assert payload["schema"] == LITMUS_SCHEMA
        assert payload["kind"] == "test"
        assert LitmusTest.from_payload(payload) == test

    def test_wrong_schema_rejected(self):
        payload = make().to_payload()
        payload["schema"] = "repro.litmus/v999"
        with pytest.raises(ValueError, match="schema"):
            LitmusTest.from_payload(payload)

    def test_wrong_kind_rejected(self):
        payload = make().to_payload()
        payload["kind"] = "report"
        with pytest.raises(ValueError, match="not 'test'"):
            LitmusTest.from_payload(payload)

    def test_without_expectations_drops_the_exemplars(self):
        test = corpus_test("prefix-pair")
        reduced = test.without_expectations(((st("y", 1),),))
        assert reduced.expect == {}
        assert reduced.locations == test.locations
        assert reduced.programs == ((st("y", 1),),)


class TestLowering:
    def test_plain_locations_get_distinct_persistent_blocks(self):
        test = make(locations=("x", "y", "z"),
                    programs=((st("x", 1), st("y", 1), st("z", 1)),))
        addrs = assign_addresses(test, CFG)
        blocks = {addr // CFG.block_size for addr in addrs.values()}
        assert len(blocks) == 3
        for addr in addrs.values():
            assert CFG.mem.is_persistent(addr)

    def test_same_block_group_shares_one_block(self):
        test = make(locations=("x", "w"),
                    programs=((st("x", 1), st("w", 1)),),
                    same_block=(("x", "w"),))
        addrs = assign_addresses(test, CFG)
        assert addrs["x"] // CFG.block_size == addrs["w"] // CFG.block_size
        assert addrs["x"] != addrs["w"]

    def test_conflict_group_members_share_l1_and_llc_set(self):
        test = make(locations=("k0", "k1", "k2"),
                    programs=((st("k0", 1), st("k1", 1), st("k2", 1)),),
                    conflict_groups=(("k0", "k1", "k2"),))
        addrs = assign_addresses(test, CFG)
        l1_sets = CFG.l1d.size_bytes // (CFG.l1d.assoc * CFG.block_size)
        llc_sets = CFG.llc.size_bytes // (CFG.llc.assoc * CFG.block_size)
        l1 = {(a // CFG.block_size) % l1_sets for a in addrs.values()}
        llc = {(a // CFG.block_size) % llc_sets for a in addrs.values()}
        assert len(l1) == 1 and len(llc) == 1
        assert len(set(addrs.values())) == 3

    def test_lower_produces_one_thread_per_program(self):
        test = corpus_test("mp-flush-fence")
        trace, addrs = lower(test, CFG)
        assert len(trace.threads) == len(test.programs)
        for prog, thread in zip(test.programs, trace.threads):
            assert len(thread.ops) == len(prog)
        assert set(addrs) == set(test.locations)

    def test_observe_state_reads_in_location_order(self):
        test = make()
        addrs = assign_addresses(test, CFG)

        class FakeMedia:
            def read_word(self, addr, width):
                assert width == 8
                return 7 if addr == addrs["y"] else 0

        assert observe_state(FakeMedia(), test, addrs) == (0, 7)

    def test_too_many_programs_for_the_cores_rejected(self):
        test = make(programs=tuple(
            (st("x", k + 1),) for k in range(CFG.num_cores + 1)
        ))
        with pytest.raises(ValueError, match="cores"):
            lower(test, CFG)
