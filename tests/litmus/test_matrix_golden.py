"""Golden agreement matrix: the full corpus against the 7 builtins.

The rendered matrix is the battery's headline artifact; pinning it
verbatim catches *any* drift — a new observed state, a weakened
enumerator, a changed declaration, a renamed scheme — in one diff.
Update the snapshot only after convincing yourself the new behaviour is
correct (the cells encode real semantics: e.g. ``bsp`` reaching ``2eq``
under strict is the ordered buffer realizing exact strict prefixes,
and ``bep``'s ``FORBIDDEN:2`` under *strict* is fine because its
declared model is epoch).
"""

import pytest

from repro.core.registry import iter_schemes
from repro.litmus.runner import (
    CLASS_FORBIDDEN,
    battery_failures,
    render_matrix,
    run_battery,
)

GOLDEN_MATRIX = """\
target   | declared | strict       | px86-tso     | epoch        | verdict
---------+----------+--------------+--------------+--------------+-----------
bbb      | strict   | ok 0eq/24sub | ok 0eq/24sub | ok 0eq/24sub | conformant
bbb-proc | strict   | ok 0eq/24sub | ok 0eq/24sub | ok 0eq/24sub | conformant
eadr     | strict   | ok 0eq/24sub | ok 0eq/24sub | ok 0eq/24sub | conformant
pmem     | strict   | ok 18eq/6sub | ok 6eq/18sub | ok 3eq/21sub | conformant
bsp      | strict   | ok 2eq/22sub | ok 0eq/24sub | ok 0eq/24sub | conformant
bep      | epoch    | FORBIDDEN:2  | ok 0eq/24sub | ok 0eq/24sub | conformant
none     | px86-tso | FORBIDDEN:1  | ok 0eq/24sub | ok 0eq/24sub | conformant"""

#: the only strict-model escapes among the builtins, and why they are
#: fine: epoch persistency lets bep persist a younger flushed line (or a
#: capacity-evicted epoch write) before an older unflushed one, and raw
#: px86 lets `none` do the same for the flushed line.
EXPECTED_STRICT_ESCAPES = {
    ("bep", "flush-newer"),
    ("bep", "epoch-capacity"),
    ("none", "flush-newer"),
}


@pytest.fixture(scope="module")
def report():
    builtins = [info.name for info in iter_schemes() if info.builtin]
    return run_battery(
        schemes=builtins, include_mutants=False, minimize=False, jobs=1,
    )


def test_rendered_matrix_matches_the_golden_snapshot(report):
    rendered = [line.rstrip() for line in render_matrix(report).splitlines()]
    assert rendered == GOLDEN_MATRIX.splitlines()


def test_every_builtin_conforms_to_its_declared_model(report):
    assert battery_failures(report) == []
    assert all(row["conformant"] for row in report["schemes"])
    assert report["conformance"]["failures"] == []


def test_strict_escapes_are_exactly_the_documented_ones(report):
    escapes = {
        (cell["scheme"], cell["test"])
        for cell in report["cells"]
        if cell["models"]["strict"]["classification"] == CLASS_FORBIDDEN
    }
    assert escapes == EXPECTED_STRICT_ESCAPES


def test_every_cell_swept_at_least_one_crash_point(report):
    assert len(report["cells"]) == 7 * 24
    assert all(cell["points"] >= 1 for cell in report["cells"])
