"""Battery runner: cell sweeps, classification, reports, and events."""

import pytest

from repro.core.registry import BBB, MODEL_STRICT, PMEM
from repro.litmus.corpus import corpus, corpus_test
from repro.litmus.models import strict_states
from repro.litmus.runner import (
    CLASS_ALLOWED,
    CLASS_FORBIDDEN,
    CLASS_UNREACHABLE,
    battery_failures,
    classify_states,
    publish_litmus_report,
    render_matrix,
    run_battery,
    run_cell,
)
from repro.obs.bus import EventBus
from repro.obs.events import LitmusCellChecked


class TestClassifyStates:
    def test_exact_match_is_allowed(self):
        cls, bad = classify_states({(0, 0), (1, 0)}, {(0, 0), (1, 0)})
        assert cls == CLASS_ALLOWED and bad == []

    def test_strict_subset_is_unreachable(self):
        cls, bad = classify_states({(0, 0)}, {(0, 0), (1, 0)})
        assert cls == CLASS_UNREACHABLE and bad == []

    def test_extra_state_is_forbidden_and_sorted(self):
        cls, bad = classify_states(
            {(1, 1), (0, 1), (0, 0)}, {(0, 0)}
        )
        assert cls == CLASS_FORBIDDEN
        assert bad == [(0, 1), (1, 1)]


class TestRunCell:
    def test_honest_cell_observes_within_strict(self):
        test = corpus_test("prefix-pair")
        cell = run_cell(BBB, None, 8, test.to_payload())
        assert cell["scheme"] == BBB and cell["mutant"] is None
        assert cell["points"] > 0
        observed = {tuple(rec["state"]) for rec in cell["observed"]}
        assert observed
        assert observed <= strict_states(test)
        for rec in cell["observed"]:
            assert 1 <= rec["stop_at"] <= cell["points"]
            assert rec["site"]

    def test_final_crash_point_yields_the_full_store_image(self):
        # The crash-free image is intentionally NOT observed (a battery
        # scheme's clean finalize leaves durable-but-volatile lines);
        # the last crash point's crash_drain stands in for it.
        test = corpus_test("prefix-pair")
        cell = run_cell(BBB, None, 8, test.to_payload())
        observed = {tuple(rec["state"]) for rec in cell["observed"]}
        assert (1, 1) in observed

    def test_mutant_cell_escapes_strict(self):
        test = corpus_test("prefix-pair")
        cell = run_cell(BBB, "bbb-delayed-alloc", 8, test.to_payload())
        observed = {tuple(rec["state"]) for rec in cell["observed"]}
        assert observed - strict_states(test)


class TestRunBattery:
    @pytest.fixture(scope="class")
    def report(self):
        return run_battery(
            schemes=[BBB, PMEM], tests=corpus(["prefix-pair", "wpq-pair"]),
            include_mutants=False, minimize=False, jobs=1,
        )

    def test_report_envelope(self, report):
        assert report["schema"] == "repro.litmus/v1"
        assert report["kind"] == "report"
        assert report["tests"] == ["prefix-pair", "wpq-pair"]
        assert len(report["cells"]) == 4

    def test_cells_carry_every_model_classification(self, report):
        for cell in report["cells"]:
            for model in report["models"]:
                entry = cell["models"][model]
                assert entry["classification"] in (
                    CLASS_ALLOWED, CLASS_UNREACHABLE, CLASS_FORBIDDEN
                )
                assert entry["observed_states"] <= entry["allowed_states"] \
                    or entry["forbidden"]

    def test_honest_builtins_conform_to_their_declaration(self, report):
        assert battery_failures(report) == []
        for row in report["schemes"]:
            assert row["declared_model"] == MODEL_STRICT
            assert row["conformant"]

    def test_render_matrix_has_a_row_per_target(self, report):
        rendered = render_matrix(report)
        assert "conformant" in rendered
        for row in report["schemes"]:
            assert row["scheme"] in rendered
        for model in report["models"]:
            assert model in rendered

    def test_publish_projects_counts_onto_metrics(self, report):
        reg = publish_litmus_report(report)
        assert reg.counter("litmus.cells").value == len(report["cells"])
        assert reg.counter("litmus.points").value == sum(
            c["points"] for c in report["cells"]
        )
        assert reg.counter("litmus.conformance_failures").value == 0
        assert reg.counter("litmus.mutants_uncaught").value == 0

    def test_bus_receives_a_cell_event_per_cell(self):
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        report = run_battery(
            schemes=[BBB], tests=corpus(["prefix-pair"]),
            include_mutants=False, minimize=False, jobs=1, bus=bus,
        )
        checked = [e for e in events if isinstance(e, LitmusCellChecked)]
        assert len(checked) == len(report["cells"]) == 1
        assert checked[0].scheme == BBB
        assert checked[0].test == "prefix-pair"
        assert checked[0].classification == CLASS_UNREACHABLE
