"""Model enumerators: units, corpus exemplar agreement, and the
model-relation facts the battery's classification logic relies on."""

import pytest

from repro.core.registry import (
    MODEL_EPOCH,
    MODEL_PX86_TSO,
    MODEL_STRICT,
    PERSISTENCY_MODELS,
)
from repro.litmus.corpus import CORPUS
from repro.litmus.dsl import LitmusTest, epoch_boundary, fence, fl, st
from repro.litmus.models import (
    allowed_states,
    epoch_states,
    px86_states,
    strict_states,
)


def make(programs, locations=("x", "y")):
    return LitmusTest(name="t", locations=locations, programs=programs)


class TestStrict:
    def test_single_core_allows_only_prefixes(self):
        test = make(((st("x", 1), st("y", 2)),))
        assert strict_states(test) == {(0, 0), (1, 0), (1, 2)}

    def test_two_cores_interleave(self):
        test = make(((st("x", 1),), (st("y", 2),)))
        assert strict_states(test) == {(0, 0), (1, 0), (0, 2), (1, 2)}

    def test_non_store_ops_never_change_the_image(self):
        bare = make(((st("x", 1), st("y", 2)),))
        decorated = make(((st("x", 1), fl("x"), fence(), st("y", 2),
                           epoch_boundary()),))
        assert strict_states(decorated) == strict_states(bare)


class TestPx86:
    def test_unflushed_lines_persist_in_any_order(self):
        test = make(((st("x", 1), st("y", 2)),))
        assert (0, 2) in px86_states(test)

    def test_per_line_order_is_kept(self):
        # Two stores to the same location: the newer value cannot be
        # durable without the older one having been overwritten in line
        # order, so the observable set is the per-line prefixes.
        test = make(((st("x", 1), st("x", 2)),), locations=("x",))
        assert px86_states(test) == {(0,), (1,), (2,)}

    def test_fence_orders_flushed_line_before_later_stores(self):
        test = make(((st("x", 1), fl("x"), fence(), st("y", 2)),))
        assert (0, 2) not in px86_states(test)

    def test_flush_without_fence_orders_nothing(self):
        test = make(((st("x", 1), fl("x"), st("y", 2)),))
        assert (0, 2) in px86_states(test)


class TestEpoch:
    def test_epoch_boundary_orders_cross_epoch_stores(self):
        test = make(((st("x", 1), epoch_boundary(), st("y", 2)),))
        states = epoch_states(test)
        assert (0, 2) not in states
        assert {(0, 0), (1, 0), (1, 2)} <= states

    def test_intra_epoch_stores_reorder_freely(self):
        test = make(((st("x", 1), st("y", 2)),))
        assert (0, 2) in epoch_states(test)

    def test_same_location_across_epochs_steps_through_values(self):
        test = make(((st("x", 1), epoch_boundary(), st("x", 2)),),
                    locations=("x",))
        assert epoch_states(test) == {(0,), (1,), (2,)}


class TestModelRelations:
    @pytest.mark.parametrize("test", CORPUS, ids=lambda t: t.name)
    def test_strict_contained_in_both_relaxed_models(self, test):
        strict = strict_states(test)
        assert strict <= px86_states(test)
        assert strict <= epoch_states(test)

    def test_px86_and_epoch_are_incomparable(self):
        # flush;fence inside one epoch: px86 forbids the younger store
        # alone, epoch (which never sees flushes) allows it.
        chained = make(((st("x", 1), fl("x"), fence(), st("y", 2)),))
        assert (0, 2) in epoch_states(chained)
        assert (0, 2) not in px86_states(chained)
        # an epoch boundary with no flushes: epoch forbids the younger
        # store alone, px86 (which ignores epoch ops) allows it.
        bounded = make(((st("x", 1), epoch_boundary(), st("y", 2)),))
        assert (0, 2) in px86_states(bounded)
        assert (0, 2) not in epoch_states(bounded)


class TestExemplarAgreement:
    @pytest.mark.parametrize("test", CORPUS, ids=lambda t: t.name)
    def test_hand_written_exemplars_match_the_enumerators(self, test):
        assert test.expect, f"{test.name} has no exemplar table"
        for model, table in test.expect.items():
            allowed = allowed_states(test, model)
            for state in table.get("allowed", ()):
                assert state in allowed, (test.name, model, state)
            for state in table.get("forbidden", ()):
                assert state not in allowed, (test.name, model, state)


class TestDispatch:
    def test_every_registry_model_has_an_enumerator(self):
        test = make(((st("x", 1),),))
        for model in PERSISTENCY_MODELS:
            assert allowed_states(test, model)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown persistency model"):
            allowed_states(make(((st("x", 1),),)), "vibes")
