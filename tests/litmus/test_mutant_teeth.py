"""Mutant teeth: the battery must catch both checker mutants, minimize
each catch to a replayable counterexample, and reproduce it on replay.

An uncaught mutant means the battery has lost its discriminating power —
that is itself a gate failure (`battery_failures` reports it), so these
tests pin the teeth from both directions: the mutants ARE caught, and
losing a catch WOULD fail the gate.
"""

import pytest

from repro.check.mutants import MUTANTS
from repro.litmus.corpus import corpus
from repro.litmus.dsl import LitmusTest
from repro.litmus.runner import (
    CLASS_FORBIDDEN,
    battery_failures,
    minimize_cell,
    replay_counterexample,
    run_battery,
    write_counterexample,
)


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    cex_dir = tmp_path_factory.mktemp("litmus-cex")
    rep = run_battery(
        tests=corpus(["prefix-pair"]), jobs=1, cex_dir=str(cex_dir),
    )
    return rep, cex_dir


def mutant_rows(rep):
    return [row for row in rep["schemes"] if row["mutant"] is not None]


def test_every_registered_mutant_runs_in_the_battery(report):
    rep, _ = report
    assert {row["mutant"] for row in mutant_rows(rep)} == set(MUTANTS)


def test_each_mutant_produces_a_forbidden_cell(report):
    rep, _ = report
    for row in mutant_rows(rep):
        assert row["caught"], row["mutant"]
        assert row["forbidden_cells"] == ["prefix-pair"]
    assert all(rep["conformance"]["mutants_caught"].values())
    # honest schemes stay clean alongside: catching mutants is not a
    # side effect of an over-strict enumerator.
    assert battery_failures(rep) == []


def test_forbidden_cells_minimize_to_replayable_counterexamples(report):
    rep, cex_dir = report
    by_target = {
        cex["mutant"]: cex for cex in rep["counterexamples"]
        if cex["mutant"] is not None
    }
    assert set(by_target) == set(MUTANTS)
    for mutant, cex in by_target.items():
        assert cex["schema"] == "repro.litmus/v1"
        assert cex["kind"] == "counterexample"
        reduced = LitmusTest.from_payload(cex["test"])
        assert sum(len(p) for p in reduced.programs) <= 2
        path = cex_dir / f"litmus-cex-{mutant}.json"
        assert path.exists()
        result = replay_counterexample(str(path))
        assert result["reproduced"], mutant
        assert result["state"] == cex["forbidden_state"]


def test_minimize_cell_recomputes_allowed_sets_soundly(tmp_path):
    # Minimize directly (not via run_battery) and round-trip through
    # write_counterexample: the reduced programs must still observe a
    # state forbidden for the REDUCED test, not merely for the original.
    mutant = sorted(MUTANTS)[0]
    base = MUTANTS[mutant][0]
    test = corpus(["prefix-pair"])[0]
    artifact = minimize_cell(base, mutant, 8, test, "strict")
    assert artifact["tests_run"] >= 1
    path = tmp_path / "cex.json"
    write_counterexample(artifact, str(path))
    assert replay_counterexample(str(path))["reproduced"]


def test_an_uncaught_mutant_would_fail_the_gate(report):
    rep, _ = report
    doctored = {
        "conformance": {
            "failures": [],
            "mutants_caught": dict(
                rep["conformance"]["mutants_caught"], **{"some-mutant": False}
            ),
        },
    }
    failures = battery_failures(doctored)
    assert len(failures) == 1
    assert "some-mutant" in failures[0]
    assert "teeth" in failures[0]
