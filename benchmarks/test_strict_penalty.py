"""The headline claim quantified: BBB provides strict persistency without
its performance penalty.

Intel-PMEM-style strict persistency (clwb+sfence per persisting store)
pays a WPQ round trip on every persist; BBB reaches the same persist
ordering guarantee at ~eADR speed (Table I's "Strict pers. penalty"
column: High vs Low vs None).
"""

from repro.analysis.experiments import run_workload
from repro.analysis.tables import geomean, render_table
from repro.api import build_system

WORKLOADS = ("rtree", "ctree", "hashmap", "mutateNC", "swapNC", "swapC")


def test_strict_persistency_penalty(benchmark, report, sim_config, sweep_spec):
    def sweep():
        rows = []
        for name in WORKLOADS:
            base = run_workload(name, lambda: build_system("eadr", config=sim_config), sweep_spec, sim_config)
            b = run_workload(
                name, lambda: build_system("bbb", entries=32, config=sim_config), sweep_spec, sim_config
            )
            s_ = run_workload(
                name, lambda: build_system("bsp", entries=32, config=sim_config), sweep_spec, sim_config
            )
            p = run_workload(
                name, lambda: build_system("pmem", config=sim_config), sweep_spec, sim_config
            )
            rows.append(
                (
                    name,
                    b.execution_cycles / base.execution_cycles,
                    s_.execution_cycles / base.execution_cycles,
                    p.execution_cycles / base.execution_cycles,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    bbb_avg = geomean([r[1] for r in rows])
    bsp_avg = geomean([r[2] for r in rows])
    pmem_avg = geomean([r[3] for r in rows])

    table = render_table(
        ["Workload", "BBB-32 / eADR", "BSP / eADR", "PMEM strict / eADR"],
        [(n, f"{b:.3f}", f"{s:.3f}", f"{p:.3f}") for n, b, s, p in rows]
        + [("geomean", f"{bbb_avg:.3f}", f"{bsp_avg:.3f}", f"{pmem_avg:.3f}")],
        title="Strict-persistency penalty: execution time normalized to eADR "
              "(Table I: None / Low / Medium / High)",
    )
    report(table)

    # Table I's ordering: eADR (1.0) <= BBB (Low) < PMEM (High); BSP sits
    # between BBB and PMEM on average (Medium).
    assert bbb_avg <= 1.05
    assert pmem_avg >= 1.3
    assert bbb_avg <= bsp_avg <= pmem_avg
    for name, b, s, p in rows:
        assert p > b, name
