"""Write-endurance analysis (Section II-B's motivation, quantified).

Two exhibits:

1. The NVCache argument: at L1-level store rates, PCM/ReRAM cache lines
   wear out absurdly fast — why the paper battery-backs SRAM instead of
   using NVM caches.
2. The scheme comparison: hottest-NVMM-block write counts under eADR,
   BBB (32/1024), and the processor-side organisation — the endurance
   reading of Fig. 7(b)'s write totals.
"""

from repro.analysis.experiments import default_sim_config
from repro.analysis.tables import render_table
from repro.energy import endurance
from repro.api import build_system
from repro.workloads.base import registry

WORKLOAD = "swapNC"


def test_nvcache_lifetime_argument(benchmark, report):
    def compute():
        return {
            tech: endurance.nvcache_lifetime_years(
                stores_per_cycle=0.2, technology=tech
            )
            for tech in ("SRAM", "STT-RAM", "ReRAM", "PCM")
        }

    years = benchmark(compute)

    table = render_table(
        ["Technology", "endurance (writes)", "L1 NVCache hot-line lifetime"],
        [
            (
                tech,
                f"{endurance.WRITE_ENDURANCE[tech]:.0e}",
                f"{y:.2e} years" if y < 1 else f"{y:,.1f} years",
            )
            for tech, y in years.items()
        ],
        title="Section II-B: why NVM caches near the core wear out",
    )
    report(table)

    assert years["PCM"] < 1 / 365          # under a day
    assert years["ReRAM"] < 1.0            # under a year
    assert years["SRAM"] > years["STT-RAM"] > years["ReRAM"] > years["PCM"]


def test_hottest_block_writes_by_scheme(benchmark, report, sim_config, sweep_spec):
    def sweep():
        rows = []
        for label, factory in (
            ("eADR", lambda c: build_system("eadr", config=c)),
            ("BBB (32)", lambda c: build_system("bbb", entries=32, config=c)),
            ("BBB (1024)", lambda c: build_system("bbb", entries=1024,
                                                  config=c)),
            ("BBB proc-side", lambda c: build_system(
                "bbb-proc", entries=32, config=c,
                coalesce_consecutive=False)),
        ):
            workload = registry(sim_config.mem, sweep_spec)[WORKLOAD]
            trace = workload.build()
            system = factory(sim_config)
            workload.seed_media(system.nvmm_media)
            result = system.run(trace, finalize=True)
            media = system.nvmm_media
            est = endurance.media_lifetime(
                media, window_cycles=max(1, result.execution_cycles),
                technology="PCM",
            )
            rows.append(
                (label, media.total_writes, media.max_block_writes(),
                 est.lifetime_years)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = render_table(
        ["Scheme", "total NVMM writes", "hottest-block writes",
         "PCM lifetime (years, extrapolated)"],
        [(l, t, m, f"{y:.2e}") for l, t, m, y in rows],
        title=f"Endurance comparison on {WORKLOAD} (finalized runs)",
    )
    report(table)

    by_label = {r[0]: r for r in rows}
    # The processor-side organisation concentrates the most writes.
    assert by_label["BBB proc-side"][1] >= by_label["BBB (32)"][1]
    # A larger bbPB only reduces write traffic.
    assert by_label["BBB (1024)"][1] <= by_label["BBB (32)"][1]
    # Memory-side BBB stays within 2x of eADR's hottest block.
    assert by_label["BBB (32)"][2] <= 2 * max(1, by_label["eADR"][2])
