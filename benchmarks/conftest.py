"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one exhibit (table or figure) of the paper's
evaluation: it runs the experiment driver under ``pytest-benchmark``,
prints the same rows/series the paper reports, and archives the rendered
table under ``benchmarks/out/`` so the numbers can be inspected after a
``--benchmark-only`` run.

Simulation benchmarks run the Table III system scaled down (see
``repro.analysis.experiments.default_sim_config``) with workload sizes
chosen so the persistent footprint far exceeds the LLC — the regime the
paper's 1M-node workloads operate in.

The experiment drivers fan their (workload x scheme) grids across CPU
cores via :mod:`repro.analysis.batch`; set ``REPRO_JOBS=1`` to force
serial execution (results are bit-identical either way) or ``REPRO_JOBS=N``
to pin the worker count.  Note the wall-clock that ``pytest-benchmark``
reports therefore depends on the machine's core count.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.experiments import default_sim_config
from repro.workloads.base import WorkloadSpec

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def sim_config():
    return default_sim_config()


@pytest.fixture(scope="session")
def bench_spec():
    """Workload size for the Fig. 7 class experiments: 8 threads as in the
    paper, footprint >> LLC, and enough operations that blocks are
    *revisited* several times (the regime where eADR's cache-lifetime
    coalescing can beat a 32-entry bbPB window — the 4.9% of Fig. 7b)."""
    return WorkloadSpec(threads=8, ops=400, elements=131072, seed=42)


@pytest.fixture(scope="session")
def sweep_spec():
    """Smaller per-run size for the Fig. 8 sweep (11 sizes x 7 workloads)."""
    return WorkloadSpec(threads=8, ops=100, elements=65536, seed=42)


@pytest.fixture
def report(request, capsys):
    """Print a rendered exhibit and archive it under benchmarks/out/."""

    def _report(text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        name = request.node.name.replace("/", "_")
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)

    return _report
