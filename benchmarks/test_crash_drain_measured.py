"""Measured crash-drain footprints (cross-checking Section V-A's inputs).

The analytical Tables VII-IX assume (a) an average of 44.9% of cache
blocks are dirty at crash time for eADR [31], and (b) full bbPBs for BBB
(its worst case).  This benchmark crashes the simulator mid-workload and
measures what the battery actually had to move — validating that eADR's
obligation scales with cache dirtiness while BBB's is bounded by
``cores x entries`` regardless of workload.
"""

from repro.analysis.experiments import default_sim_config
from repro.analysis.tables import render_table
from repro.api import build_system
from repro.workloads.base import registry

WORKLOADS = ("swapNC", "hashmap", "rtree")


def test_crash_drain_footprint(benchmark, report, sim_config, sweep_spec):
    def sweep():
        rows = []
        for name in WORKLOADS:
            trace = registry(sim_config.mem, sweep_spec)[name].build()
            crash_at = trace.total_ops() // 2

            e_sys = build_system("eadr", config=sim_config)
            e_res = e_sys.run(trace, crash_at_op=crash_at)

            b_sys = build_system("bbb", entries=32, config=sim_config)
            b_res = b_sys.run(trace, crash_at_op=crash_at)

            bound = sim_config.num_cores * 32
            rows.append(
                (
                    name,
                    e_res.drain_report.cache_blocks,
                    b_res.drain_report.bbpb_blocks,
                    bound,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = render_table(
        ["Workload", "eADR blocks drained", "BBB blocks drained", "BBB bound"],
        rows,
        title="Measured crash-drain footprint (mid-workload crash)",
    )
    report(table)

    for name, eadr_blocks, bbb_blocks, bound in rows:
        # BBB's drain is bounded by design; eADR's scales with the dirty
        # working set and dwarfs it.
        assert bbb_blocks <= bound, name
        assert eadr_blocks > bbb_blocks, name
