"""Table VIII: estimated draining time for BBB vs eADR (dirty blocks only).

Paper values: mobile 0.8 ms vs 2.6 us (307x); server 1.8 ms vs 2.4 us
(750x).  The time model is bytes / (channels x per-channel NVMM write
bandwidth); the paper's rounded figures imply ~2.3 GB/s per channel [41].
"""

import pytest

from repro.analysis.experiments import table8
from repro.analysis.tables import fmt_ratio, fmt_si, render_table

PAPER = {
    "Mobile Class": (0.8e-3, 2.6e-6, 307),
    "Server Class": (1.8e-3, 2.4e-6, 750),
}


def test_table8_drain_time(benchmark, report):
    rows = benchmark(table8)

    table = render_table(
        ["System", "eADR (measured)", "BBB (measured)", "eADR/BBB",
         "eADR (paper)", "BBB (paper)", "ratio (paper)"],
        [
            (
                name,
                fmt_si(eadr_s, "s"),
                fmt_si(bbb_s, "s"),
                fmt_ratio(ratio),
                fmt_si(PAPER[name][0], "s"),
                fmt_si(PAPER[name][1], "s"),
                f"{PAPER[name][2]}x",
            )
            for name, eadr_s, bbb_s, ratio in rows
        ],
        title="Table VIII: draining time, eADR vs BBB",
    )
    report(table)

    for name, eadr_s, bbb_s, ratio in rows:
        paper_eadr, paper_bbb, paper_ratio = PAPER[name]
        assert eadr_s == pytest.approx(paper_eadr, rel=0.15)  # paper rounds to 1 digit
        assert bbb_s == pytest.approx(paper_bbb, rel=0.05)
        # Two to three orders of magnitude faster.
        assert ratio == pytest.approx(paper_ratio, rel=0.12)
