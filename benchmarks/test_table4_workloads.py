"""Table IV: workload characterisation — %P-Stores per workload.

Regenerates the paper's Table IV (workload, description, fraction of
persisting stores) from the generated traces and compares against the
published percentages.
"""

from repro.analysis.experiments import table4
from repro.analysis.tables import render_table


def test_table4_workload_pstores(benchmark, report, sim_config, bench_spec):
    rows = benchmark.pedantic(
        lambda: table4(spec=bench_spec, config=sim_config), rounds=1, iterations=1
    )

    table = render_table(
        ["Workload", "Description", "%P-Stores (measured)", "%P-Stores (paper)"],
        [
            (name, desc, f"{measured:.1f}%", f"{paper:.1f}%" if paper else "-")
            for name, desc, measured, paper in rows
        ],
        title="Table IV: evaluated workloads",
    )
    report(table)

    by_name = {name: measured for name, _, measured, _ in rows}
    # Shapes: hashmap is by far the lowest; arrays are the highest.
    assert by_name["hashmap"] < by_name["rtree"] < by_name["mutateNC"]
    for name, _, measured, paper in rows:
        if paper is not None:
            assert abs(measured - paper) <= 8.0, (name, measured, paper)
