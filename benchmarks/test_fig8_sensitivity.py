"""Figure 8: sensitivity to the bbPB size (1 to 1024 entries).

Paper result (geomean across workloads, normalized to the 1-entry bbPB):
(a) rejections due to full bbPB drop quickly, reaching ~zero by 16-32
entries; (b) execution time stops improving at ~32 entries; (c) drains to
NVMM keep falling until ~64 entries (the coalescing win).  32 entries is
the knee — the paper's default.
"""

from repro.analysis.experiments import fig8
from repro.analysis.tables import render_table

SIZES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def test_fig8_bbpb_size_sensitivity(benchmark, report, sim_config, sweep_spec):
    points = benchmark.pedantic(
        lambda: fig8(sizes=SIZES, spec=sweep_spec, config=sim_config),
        rounds=1,
        iterations=1,
    ).data

    table = render_table(
        ["bbPB entries", "(a) rejections (X)", "(b) exec time (X)", "(c) drains (X)"],
        [
            (p.entries, f"{p.rejections:.4f}", f"{p.exec_time:.4f}", f"{p.drains:.4f}")
            for p in points
        ],
        title="Fig. 8: impact of bbPB size, normalized to 1-entry bbPB (geomean)",
    )
    report(table)

    by_size = {p.entries: p for p in points}
    # (a) rejections collapse to near zero by 16-32 entries.
    assert by_size[1].rejections == 1.0
    assert by_size[32].rejections <= 0.02
    # (b) execution time improves then flattens: 32 entries ~= 1024 entries.
    assert by_size[32].exec_time < by_size[1].exec_time
    assert abs(by_size[32].exec_time - by_size[1024].exec_time) <= 0.03
    # (c) drains keep falling with size (the coalescing win) and flatten
    # in the 64-256 range (the paper saw ~64 at its workload scale; our
    # scaled-down footprints shift the knee slightly right).
    assert by_size[64].drains < 0.5 * by_size[1].drains
    assert abs(by_size[256].drains - by_size[1024].drains) <= 0.05
    # Broad monotonic trends (allowing small interleaving noise).
    assert by_size[4].rejections <= by_size[1].rejections
    assert by_size[256].drains <= by_size[4].drains
