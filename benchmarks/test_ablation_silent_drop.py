"""Ablation: silently dropping LLC writebacks of persistent dirty blocks.

Section III-E, example (c): because a dirty persistent block in the LLC
"has or had a corresponding bbPB block", its value is already durable and
the LLC writeback can be skipped — a write-endurance saving.  This
ablation disables the optimisation and counts the redundant NVMM writes
it would have caused.
"""

import dataclasses

from repro.analysis.experiments import run_workload
from repro.analysis.tables import render_table
from repro.api import build_system

WORKLOADS = ("mutateNC", "swapNC", "hashmap", "rtree")


def test_ablation_silent_writeback_drop(benchmark, report, sim_config, sweep_spec):
    no_drop_cfg = dataclasses.replace(
        sim_config, silent_drop_persistent_writebacks=False
    )

    def sweep():
        results = {}
        for name in WORKLOADS:
            with_drop = run_workload(
                name, lambda: build_system("bbb", entries=32, config=sim_config), sweep_spec, sim_config
            )
            without_drop = run_workload(
                name, lambda: build_system("bbb", entries=32, config=no_drop_cfg), sweep_spec, no_drop_cfg
            )
            results[name] = (with_drop.nvmm_writes, without_drop.nvmm_writes)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = render_table(
        ["Workload", "writes (drop ON)", "writes (drop OFF)", "redundant writes"],
        [
            (name, on, off, f"+{(off - on) / max(1, on) * 100:.1f}%")
            for name, (on, off) in results.items()
        ],
        title="Ablation: silent drop of persistent dirty LLC writebacks",
    )
    report(table)

    # The optimisation saves NVMM writes on every workload with LLC
    # eviction traffic, and never costs any.
    for name, (on, off) in results.items():
        assert off >= on, name
    assert any(off > on for name, (on, off) in results.items())
