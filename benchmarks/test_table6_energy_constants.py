"""Table VI: estimated energy costs of draining operations.

Regenerates the constant table (derived by the paper from Pandiyan & Wu
[65]) that all drain-energy estimates build on.
"""

from repro.analysis.tables import fmt_si, render_table
from repro.energy import model


def test_table6_energy_constants(benchmark, report):
    def collect():
        return [
            ("Accessing Data from SRAM", model.SRAM_ACCESS_J_PER_BYTE),
            ("Moving data from L1D to NVMM", model.L1_TO_NVMM_J_PER_BYTE),
            ("Moving data from bbPB to NVMM", model.L1_TO_NVMM_J_PER_BYTE),
            ("Moving data from L2 to NVMM", model.L2_TO_NVMM_J_PER_BYTE),
            ("Moving data from L3 to NVMM", model.L2_TO_NVMM_J_PER_BYTE),
        ]

    rows = benchmark(collect)
    table = render_table(
        ["Operation", "Energy Cost"],
        [(op, fmt_si(joules, "J/Byte")) for op, joules in rows],
        title="Table VI: estimated draining energy costs",
    )
    report(table)

    assert rows[0][1] == 1e-12               # 1 pJ/Byte
    assert rows[1][1] == rows[2][1]          # bbPB drains at the L1 cost
    assert abs(rows[1][1] - 11.839e-9) < 1e-12
    assert abs(rows[3][1] - 11.228e-9) < 1e-12
