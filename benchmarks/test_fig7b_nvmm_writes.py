"""Figure 7(b): number of NVMM writes, normalized to eADR.

Paper result: 32-entry BBB adds 4.9% writes on average (1-7.9% per
workload); 1024 entries brings the overhead under 1% (the larger buffer
captures nearly all coalescing that happens naturally in eADR's caches).
"""

from repro.analysis.experiments import fig7, fig7_averages
from repro.analysis.tables import render_table


def test_fig7b_nvmm_writes(benchmark, report, sim_config, bench_spec):
    result = benchmark.pedantic(
        lambda: fig7(spec=bench_spec, config=sim_config), rounds=1, iterations=1
    )
    rows = result.data
    _, writes_avg = fig7_averages(rows)

    labels = list(rows[0].nvmm_writes)
    table = render_table(
        ["Workload"] + labels,
        [[r.workload] + [f"{r.nvmm_writes[l]:.3f}" for l in labels] for r in rows]
        + [["geomean"] + [f"{writes_avg[l]:.3f}" for l in labels]],
        title="Fig. 7(b): NVMM writes normalized to eADR (lower = better)",
    )
    report(table)

    assert writes_avg["Optimal (eADR)"] == 1.0
    # BBB-32 adds a small single-digit-% write overhead on average...
    assert 1.0 <= writes_avg["BBB (32)"] <= 1.20
    # ...and BBB-1024 is within ~1-2% of eADR.
    assert writes_avg["BBB (1024)"] <= 1.03
    # Monotonic: a bigger buffer never writes more.
    for r in rows:
        assert r.nvmm_writes["BBB (1024)"] <= r.nvmm_writes["BBB (32)"] + 1e-9
