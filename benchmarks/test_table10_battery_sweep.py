"""Table X: battery size (mm^3) when varying the number of bbPB entries.

Paper rows: SuperCap mobile {1: 0.12, 4: 0.50, 16: 2.02, 32: 4.1, 64: 8.1,
256: 32.3, 1024: 129.3} and server {0.7, 2.7, 10.8, 21.6, 43.1, 172.4,
689.7}; Li-thin is 100x smaller.  Even a 1024-entry bbPB stays 22-49x
cheaper than eADR's battery.
"""

import pytest

from repro.analysis.experiments import table10
from repro.analysis.tables import render_table
from repro.energy import battery
from repro.energy.platforms import MOBILE, SERVER

ENTRIES = (1, 4, 16, 32, 64, 256, 1024)

PAPER = {
    ("SuperCap", "M"): {1: 0.12, 4: 0.50, 16: 2.02, 32: 4.1, 64: 8.1,
                        256: 32.3, 1024: 129.3},
    ("SuperCap", "S"): {1: 0.7, 4: 2.7, 16: 10.8, 32: 21.6, 64: 43.1,
                        256: 172.4, 1024: 689.7},
    ("Li-thin", "M"): {1: 0.001, 4: 0.005, 16: 0.02, 32: 0.04, 64: 0.08,
                       256: 0.3, 1024: 1.3},
    ("Li-thin", "S"): {1: 0.006, 4: 0.026, 16: 0.10, 32: 0.21, 64: 0.43,
                       256: 1.7, 1024: 6.8},
}


def test_table10_battery_size_sweep(benchmark, report):
    sweeps = benchmark(lambda: table10(ENTRIES)).data

    rows = []
    for (tech, plat), values in sweeps.items():
        rows.append([f"{tech} {plat}"] + [f"{values[n]:.3g}" for n in ENTRIES])
        rows.append(
            [f"  (paper)"] + [f"{PAPER[(tech, plat)][n]:.3g}" for n in ENTRIES]
        )
    table = render_table(
        ["Battery / bbPB size"] + [str(n) for n in ENTRIES],
        rows,
        title="Table X: battery size (mm^3) vs bbPB entries",
    )
    report(table)

    for key, values in sweeps.items():
        for n in ENTRIES:
            # rel for the normal range; abs covers the paper's 1-significant-
            # digit rounding of the tiniest Li-thin figures (e.g. "0.001").
            assert values[n] == pytest.approx(
                PAPER[key][n], rel=0.15, abs=6e-4
            ), (key, n)

    # "even with bbPB size of 1024 entries, BBB is 22-49x cheaper than eADR"
    for platform, key in ((MOBILE, "M"), (SERVER, "S")):
        eadr_vol = battery.eadr_battery(platform, "SuperCap").volume_mm3
        ratio = eadr_vol / sweeps[("SuperCap", key)][1024]
        assert 20 <= ratio <= 52, ratio
