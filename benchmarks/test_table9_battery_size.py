"""Table IX: energy-source size (volume) and footprint area ratio.

Paper values (volume, mm^3): mobile eADR 2.9e3 (SuperCap) / 30 (Li-thin),
mobile BBB 4.1 / 0.04; server eADR 34e3 / 300, server BBB 21.6 / 0.21.
Footprint area assumes a cubic battery and is reported relative to a
2.61 mm^2 mobile core: eADR needs ~77x (mobile) and ~404x (server) of a
core with SuperCap; BBB fits in ~97% / ~296% of a core.
"""

import pytest

from repro.analysis.experiments import table9
from repro.analysis.tables import render_table

PAPER_VOLUME = {
    ("Mobile Class", "eADR", "SuperCap"): 2.9e3,
    ("Mobile Class", "eADR", "Li-thin"): 30.0,
    ("Mobile Class", "BBB", "SuperCap"): 4.1,
    ("Mobile Class", "BBB", "Li-thin"): 0.04,
    ("Server Class", "eADR", "SuperCap"): 34e3,
    ("Server Class", "eADR", "Li-thin"): 300.0,
    ("Server Class", "BBB", "SuperCap"): 21.6,
    ("Server Class", "BBB", "Li-thin"): 0.21,
}


def test_table9_battery_size(benchmark, report):
    estimates = benchmark(table9)

    table = render_table(
        ["System", "Scheme", "Technology", "Volume (mm^3)", "Paper (mm^3)",
         "Core-area ratio"],
        [
            (
                e.platform,
                e.scheme,
                e.technology,
                f"{e.volume_mm3:,.2f}",
                f"{PAPER_VOLUME[(e.platform, e.scheme, e.technology)]:,.2f}",
                f"{e.core_area_pct:,.1f}%",
            )
            for e in estimates
        ],
        title="Table IX: energy-source size and footprint (vs 2.61 mm^2 core)",
    )
    report(table)

    for e in estimates:
        paper = PAPER_VOLUME[(e.platform, e.scheme, e.technology)]
        assert e.volume_mm3 == pytest.approx(paper, rel=0.15), (
            e.platform, e.scheme, e.technology
        )

    by_key = {(e.platform, e.scheme, e.technology): e for e in estimates}
    # Headline ratios: ~77x core area for mobile eADR SuperCap, <1 core for
    # mobile BBB SuperCap.
    assert by_key[("Mobile Class", "eADR", "SuperCap")].core_area_ratio == pytest.approx(77, rel=0.06)
    assert by_key[("Mobile Class", "BBB", "SuperCap")].core_area_ratio < 1.0
    assert by_key[("Server Class", "eADR", "SuperCap")].core_area_ratio == pytest.approx(404, rel=0.06)
