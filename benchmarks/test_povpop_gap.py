"""The PoV/PoP gap, measured (Figure 1 / Section I made quantitative).

The paper's entire premise is the gap between the point of visibility
(L1D) and the point of persistency (WPQ/memory).  This benchmark measures
the *persist latency* of every persisting store — the cycles between its
L1D write and its durability — under each scheme:

* BBB and eADR close the gap: latency is 0 by construction;
* strict PMEM persists synchronously: latency = one WPQ round trip;
* BSP and BEP leave stores buffered until a drain: latencies of hundreds
  to thousands of cycles, during which a crash loses the store.
"""

from repro.analysis.experiments import default_sim_config
from repro.analysis.tables import render_table
from repro.api import build_system
from repro.workloads.base import registry

SCHEMES = (
    ("BBB (32)", lambda cfg: build_system("bbb", entries=32, config=cfg)),
    ("eADR", lambda cfg: build_system("eadr", config=cfg)),
    ("PMEM strict", lambda cfg: build_system("pmem", config=cfg)),
    ("BSP", lambda cfg: build_system("bsp", config=cfg)),
    ("BEP", lambda cfg: build_system("bep", config=cfg)),
)
WORKLOAD = "hashmap"


def test_povpop_gap_by_scheme(benchmark, report, sim_config, sweep_spec):
    def sweep():
        rows = []
        for label, factory in SCHEMES:
            workload = registry(sim_config.mem, sweep_spec)[WORKLOAD]
            trace = workload.build()
            system = factory(sim_config)
            workload.seed_media(system.nvmm_media)
            result = system.run(trace, finalize=True)
            stats = result.stats
            rows.append(
                (
                    label,
                    stats.persist_latency_count,
                    stats.persist_latency_avg,
                    stats.persist_latency_max,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = render_table(
        ["Scheme", "persists tracked", "avg gap (cycles)", "max gap (cycles)"],
        [(l, c, f"{a:,.1f}", m) for l, c, a, m in rows],
        title="PoV/PoP gap: persist latency per scheme (hashmap workload)",
    )
    report(table)

    by_label = {r[0]: r for r in rows}
    # BBB and eADR close the gap completely.
    assert by_label["BBB (32)"][2] == 0.0
    assert by_label["eADR"][2] == 0.0
    # Strict PMEM pays roughly the WPQ round trip per persist.
    assert by_label["PMEM strict"][2] > 0
    # Buffered schemes leave stores exposed for far longer than PMEM's
    # synchronous flush.
    assert by_label["BSP"][2] > by_label["PMEM strict"][2]
    assert by_label["BEP"][2] > by_label["PMEM strict"][2]
