"""Table VII: estimated draining energy for BBB vs eADR (dirty blocks only).

Paper values: mobile 46.5 mJ vs 145 uJ (320x); server 550 mJ vs 775 uJ
(709x).  BBB's drain energy is two to three orders of magnitude smaller.
"""

import pytest

from repro.analysis.experiments import table7
from repro.analysis.tables import fmt_ratio, fmt_si, render_table

PAPER = {
    "Mobile Class": (46.5e-3, 145e-6, 320),
    "Server Class": (550e-3, 775e-6, 709),
}


def test_table7_drain_energy(benchmark, report):
    rows = benchmark(table7)

    table = render_table(
        ["System", "eADR (measured)", "BBB (measured)", "eADR/BBB",
         "eADR (paper)", "BBB (paper)", "ratio (paper)"],
        [
            (
                name,
                fmt_si(eadr_j, "J"),
                fmt_si(bbb_j, "J"),
                fmt_ratio(ratio),
                fmt_si(PAPER[name][0], "J"),
                fmt_si(PAPER[name][1], "J"),
                f"{PAPER[name][2]}x",
            )
            for name, eadr_j, bbb_j, ratio in rows
        ],
        title="Table VII: draining energy, eADR vs BBB (44.9% dirty, 32-entry bbPB)",
    )
    report(table)

    for name, eadr_j, bbb_j, ratio in rows:
        paper_eadr, paper_bbb, paper_ratio = PAPER[name]
        assert eadr_j == pytest.approx(paper_eadr, rel=0.03)
        assert bbb_j == pytest.approx(paper_bbb, rel=0.03)
        assert ratio == pytest.approx(paper_ratio, rel=0.03)
        assert ratio > 100  # two orders of magnitude
