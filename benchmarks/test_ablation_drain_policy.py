"""Ablation: drain policies (Section III-F leaves non-FCFS policies as
future work; this ablation quantifies the design space).

* FCFS_THRESHOLD (the paper's choice): drain oldest-first down to the
  threshold.
* DRAIN_ALL: empty the whole buffer when the threshold trips — the
  coalescing window restarts from zero each burst.
* EAGER: drain on allocation — no coalescing window at all, an upper bound
  on NVMM writes (and on WPQ-port pressure).
"""

from repro.analysis.experiments import default_sim_config, run_workload
from repro.analysis.tables import render_table
from repro.core.drain import POLICY_DESCRIPTIONS, config_for_policy
from repro.core.persistency import BBBScheme
from repro.sim.config import DrainPolicy
from repro.sim.system import System

WORKLOADS = ("swapNC", "hashmap", "rtree")


def test_ablation_drain_policy(benchmark, report, sim_config, sweep_spec):
    def sweep():
        results = {}
        for policy in DrainPolicy:
            cfg = config_for_policy(policy, entries=32)
            runs = [
                run_workload(
                    name,
                    lambda c=cfg: System(sim_config, BBBScheme(c)),
                    sweep_spec,
                    sim_config,
                )
                for name in WORKLOADS
            ]
            results[policy] = {
                "writes": sum(r.nvmm_writes for r in runs),
                "drains": sum(r.bbpb_drains for r in runs),
                "rejections": sum(r.bbpb_rejections for r in runs),
            }
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = render_table(
        ["Policy", "NVMM writes", "Drains", "Rejections"],
        [
            (policy.value, r["writes"], r["drains"], r["rejections"])
            for policy, r in results.items()
        ],
        title="Ablation: bbPB drain policy (32 entries, threshold 75%)",
    )
    report(table)

    # Eager draining forgoes coalescing: strictly more NVMM writes than the
    # threshold policy.
    assert (
        results[DrainPolicy.EAGER]["writes"]
        > results[DrainPolicy.FCFS_THRESHOLD]["writes"]
    )
    # DRAIN_ALL also shortens the average coalescing window.
    assert (
        results[DrainPolicy.DRAIN_ALL]["writes"]
        >= results[DrainPolicy.FCFS_THRESHOLD]["writes"]
    )
    # Every policy has a documented rationale.
    assert set(POLICY_DESCRIPTIONS) == set(DrainPolicy)
