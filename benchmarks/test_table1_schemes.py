"""Table I: qualitative comparison of strict-persistency schemes.

Regenerates the paper's Table I rows (PMEM, BSP, eADR, BBB) from the
scheme trait declarations, and times the trait collection (trivially fast —
the exhibit is the table itself).
"""

from repro.analysis.tables import render_table
from repro.core.persistency import table1_rows


def test_table1_scheme_comparison(benchmark, report):
    rows = benchmark(table1_rows)

    table = render_table(
        ["Aspect"] + [r.name for r in rows],
        [
            ["SW Complexity"] + [r.sw_complexity for r in rows],
            ["Persist Inst."] + [r.persist_instructions for r in rows],
            ["HW Complexity"] + [r.hw_complexity for r in rows],
            ["Strict pers. penalty"] + [r.strict_persistency_penalty for r in rows],
            ["Battery Needed"] + [r.battery for r in rows],
            ["PoP location"] + [r.pop_location for r in rows],
        ],
        title="Table I: strict-persistency scheme comparison",
    )
    report(table)

    by_name = {r.name: r for r in rows}
    assert by_name["PMEM"].sw_complexity == "High"
    assert by_name["BBB (memory-side)"].battery == "Small"
    assert by_name["eADR"].battery == "Large"
