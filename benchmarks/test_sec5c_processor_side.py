"""Section V-C: the processor-side bbPB write amplification.

Paper result: "we also measured the number of writes to NVMM using the
processor-side approach, and found that on average, there are 2.8x more
writes to NVMM than eADR" — "because there are not many coalescing
opportunities" ("almost every persisting store must go to the bbPB and
drain to the NVMM").

The benchmark measures both processor-side variants: with the
consecutive-same-block coalescing special case Section III-B permits, and
without any coalescing (the behaviour Section V-C describes).  The
memory-side organisation stays within a few percent of eADR (Fig. 7b).
"""

from repro.analysis.experiments import processor_side_write_ratio
from repro.analysis.tables import geomean, render_table


def test_sec5c_processor_side_write_amplification(
    benchmark, report, sim_config, bench_spec
):
    def sweep():
        with_coalesce = processor_side_write_ratio(
            spec=bench_spec, config=sim_config, coalesce_consecutive=True
        ).data
        no_coalesce = processor_side_write_ratio(
            spec=bench_spec, config=sim_config, coalesce_consecutive=False
        ).data
        return with_coalesce, no_coalesce

    with_coalesce, no_coalesce = benchmark.pedantic(sweep, rounds=1, iterations=1)
    avg_with = geomean(list(with_coalesce.values()))
    avg_without = geomean(list(no_coalesce.values()))

    table = render_table(
        ["Workload", "proc-side / eADR (consec. coalescing)",
         "proc-side / eADR (no coalescing)"],
        [
            (name, f"{with_coalesce[name]:.2f}x", f"{no_coalesce[name]:.2f}x")
            for name in with_coalesce
        ]
        + [("geomean", f"{avg_with:.2f}x", f"{avg_without:.2f}x (paper: 2.8x)")],
        title="Section V-C: processor-side bbPB write amplification",
    )
    report(table)

    # Shape: substantial amplification; the no-coalescing variant (the
    # paper's measured behaviour) lands in the low single-digit-x range.
    assert 1.8 <= avg_without <= 6.0, avg_without
    # Every workload amplifies writes without coalescing.
    for name, ratio in no_coalesce.items():
        assert ratio > 1.02, (name, ratio)
    # The structure-heavy workloads amplify even with the special case.
    assert with_coalesce["hashmap"] > 1.5
    # Coalescing only ever helps.
    for name in with_coalesce:
        assert with_coalesce[name] <= no_coalesce[name] + 1e-9, name
