"""Figure 7(a): execution time of BBB-32 and BBB-1024, normalized to eADR.

Paper result: 32-entry BBB is within ~1% of eADR on average (2.8% worst
case); 1024-entry BBB is nearly identical.  The exhibit prints one row per
workload plus the geomean.
"""

from repro.analysis.experiments import fig7, fig7_averages
from repro.analysis.tables import render_table


def test_fig7a_execution_time(benchmark, report, sim_config, bench_spec):
    result = benchmark.pedantic(
        lambda: fig7(spec=bench_spec, config=sim_config), rounds=1, iterations=1
    )
    rows = result.data
    exec_avg, _ = fig7_averages(rows)

    labels = list(rows[0].exec_time)
    table = render_table(
        ["Workload"] + labels,
        [[r.workload] + [f"{r.exec_time[l]:.3f}" for l in labels] for r in rows]
        + [["geomean"] + [f"{exec_avg[l]:.3f}" for l in labels]],
        title="Fig. 7(a): execution time normalized to eADR (lower = better)",
    )
    report(table)

    # Shape assertions matching the paper's claims.
    assert exec_avg["Optimal (eADR)"] == 1.0
    # BBB-32: "worse than eADR by only about 1% on average, 2.8% worst case"
    assert exec_avg["BBB (32)"] <= 1.05
    for r in rows:
        assert r.exec_time["BBB (32)"] <= 1.10, (r.workload, r.exec_time)
    # BBB-1024 achieves nearly identical performance with eADR.
    assert abs(exec_avg["BBB (1024)"] - 1.0) <= 0.01
