"""Ablation: the bbPB drain-occupancy threshold (Section III-F).

The paper motivates the threshold policy as "keep bbPB as full as possible
while keeping the probability of full bbPB low" and reports that 75%
works well for a 32-entry buffer.  This ablation sweeps the threshold and
shows the trade-off: a low threshold drains early (shorter coalescing
window, more NVMM writes, but slack capacity for bursts); a 100% threshold
maximises coalescing but every burst hits a full buffer.
"""

from repro.analysis.experiments import default_sim_config, run_workload
from repro.analysis.tables import geomean, render_table
from repro.api import build_system

THRESHOLDS = (0.25, 0.50, 0.75, 1.00)
WORKLOADS = ("swapNC", "hashmap", "rtree")


def test_ablation_drain_threshold(benchmark, report, sim_config, sweep_spec):
    def sweep():
        results = {}
        for threshold in THRESHOLDS:
            runs = [
                run_workload(
                    name,
                    lambda t=threshold: build_system(
                        "bbb", entries=32, config=sim_config,
                        drain_threshold=t,
                    ),
                    sweep_spec,
                    sim_config,
                )
                for name in WORKLOADS
            ]
            results[threshold] = {
                "writes": sum(r.nvmm_writes for r in runs),
                "rejections": sum(r.bbpb_rejections for r in runs),
                "cycles": geomean([r.execution_cycles for r in runs]),
                "drains": sum(r.bbpb_drains for r in runs),
            }
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = render_table(
        ["Threshold", "NVMM writes", "Drains", "Rejections", "Exec cycles (geomean)"],
        [
            (
                f"{int(t * 100)}%",
                results[t]["writes"],
                results[t]["drains"],
                results[t]["rejections"],
                f"{results[t]['cycles']:,.0f}",
            )
            for t in THRESHOLDS
        ],
        title="Ablation: bbPB drain threshold (32 entries)",
    )
    report(table)

    # Earlier draining can only shorten the coalescing window: NVMM writes
    # are monotonically non-increasing as the threshold rises.
    writes = [results[t]["writes"] for t in THRESHOLDS]
    assert all(a >= b for a, b in zip(writes, writes[1:])), writes
    # A full-buffer (100%) threshold invites rejections relative to 75%.
    assert results[1.00]["rejections"] >= results[0.75]["rejections"]
