"""Sensitivity: NVMM channel count vs bbPB drain backpressure.

Table V gives the platforms 2 (mobile) and 12 (server) memory channels,
and Table VIII's drain times scale with them.  In the simulator, channels
parallelise WPQ acceptance, so a small bbPB under heavy persist pressure
stalls less as channels increase — the run-time face of the same scaling.
"""

import dataclasses

from repro.analysis.experiments import run_workload
from repro.analysis.tables import render_table
from repro.api import build_system

CHANNELS = (1, 2, 4, 8)
WORKLOAD = "swapNC"
ENTRIES = 4  # small buffer: drain-limited on purpose


def test_channel_count_vs_drain_stalls(benchmark, report, sim_config, sweep_spec):
    def sweep():
        rows = []
        for channels in CHANNELS:
            cfg = dataclasses.replace(
                sim_config,
                mem=dataclasses.replace(sim_config.mem, nvmm_channels=channels),
            )
            run = run_workload(
                WORKLOAD, lambda c=cfg: build_system("bbb", entries=ENTRIES, config=c), sweep_spec, cfg
            )
            rows.append((channels, run.execution_cycles, run.bbpb_rejections))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    base_cycles = rows[0][1]
    table = render_table(
        ["NVMM channels", "exec cycles", "vs 1-channel", "bbPB rejections"],
        [
            (ch, f"{cy:,}", f"{cy / base_cycles:.3f}", rej)
            for ch, cy, rej in rows
        ],
        title=f"Drain backpressure vs NVMM channels ({WORKLOAD}, "
              f"{ENTRIES}-entry bbPB)",
    )
    report(table)

    by_channels = {ch: (cy, rej) for ch, cy, rej in rows}
    # More channels never hurt, and the drain-limited configuration gains
    # measurably from 1 -> 8 channels.
    assert by_channels[8][0] <= by_channels[1][0]
    assert by_channels[8][1] <= by_channels[1][1]
